//! # imcat-ckpt — versioned, crash-safe checkpoint/resume for training state
//!
//! Production training runs get killed; a 3000-epoch run that dies at epoch
//! 2900 must not restart from scratch. This crate provides the binary
//! checkpoint format and the crash-safety discipline shared by the trainer,
//! the models, and the bench harness:
//!
//! * **Versioned container.** A [`Checkpoint`] is a list of named byte
//!   sections framed by a magic header (`IMCK`), a format version, the
//!   payload length, and an FNV-1a64 checksum. Truncated or corrupted files
//!   are detected and rejected as a whole — a checkpoint is never partially
//!   applied.
//! * **Atomic writes.** [`Checkpoint::save`] serializes to `<path>.tmp`,
//!   fsyncs, rotates the previous file to `<path>.prev`, renames the tmp file
//!   into place, and fsyncs the directory. A kill at any instant leaves
//!   either the new or the previous checkpoint loadable; [`Checkpoint::load`]
//!   falls back to `<path>.prev` when the primary file is missing or fails
//!   verification.
//! * **Bit-exact payloads.** [`Encoder`]/[`Decoder`] write fixed-width
//!   little-endian scalars; floats round-trip through raw bits, so restored
//!   state is bit-identical — including NaN payloads — which is what makes
//!   resumed training runs reproduce uninterrupted ones exactly.
//! * **Telemetry.** Saves and loads flow through `imcat-obs`
//!   (`ckpt.bytes_written`, `ckpt.save.seconds` / `ckpt.load.seconds`
//!   histograms, fallback events).
//!
//! Higher-level codecs for the training substrate live here too:
//! [`encode_store`]/[`restore_store`] for parameter tables and
//! [`encode_adam`]/[`restore_adam`] for the lazy Adam state (moments, global
//! step, per-row last-update steps).

#![warn(missing_docs)]

mod artifact;

pub use artifact::Artifact;

use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};

use imcat_tensor::{Adam, ParamStore, Tensor};

/// File magic identifying an IMCAT checkpoint container.
pub const MAGIC: &[u8; 4] = b"IMCK";
/// Container format version.
pub const VERSION: u32 = 1;
/// Header size in bytes: magic + version + payload length + checksum.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// FNV-1a 64-bit hash, used as the container checksum. Not cryptographic —
/// it detects truncation and bit rot, which is all a local checkpoint needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Append-only byte encoder with fixed-width little-endian primitives.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding, returning the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` bit-exactly.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends an `f64` bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a length-prefixed `f64` slice bit-exactly.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a tensor: rows, cols, then row-major `f32` bits.
    pub fn put_tensor(&mut self, t: &Tensor) {
        let (r, c) = t.shape();
        self.put_u32(r as u32);
        self.put_u32(c as u32);
        for &x in t.as_slice() {
            self.put_f32(x);
        }
    }
}

/// Cursor over bytes produced by [`Encoder`]. Every getter validates bounds
/// and returns `InvalidData` on malformed input instead of panicking.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad(format!(
                "checkpoint truncated: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` bit-exactly.
    pub fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_bits(u32::from_le_bytes(self.take(4)?.try_into().unwrap())))
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(self.take(8)?.try_into().unwrap())))
    }

    fn len_prefix(&mut self, elem_size: usize) -> io::Result<usize> {
        let n = self.u64()?;
        let n_usize = usize::try_from(n).map_err(|_| bad("oversized length"))?;
        // A length cannot legitimately exceed the bytes left in the buffer.
        let total = n_usize
            .checked_mul(elem_size)
            .ok_or_else(|| bad(format!("length {n} overflows checkpoint size")))?;
        if total > self.remaining() {
            return Err(bad(format!("length {n} exceeds remaining checkpoint bytes")));
        }
        Ok(n_usize)
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let n = self.len_prefix(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> io::Result<&'a str> {
        std::str::from_utf8(self.bytes()?).map_err(|_| bad("non-UTF-8 string"))
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> io::Result<Vec<u64>> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn u32s(&mut self) -> io::Result<Vec<u32>> {
        let n = self.len_prefix(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `f64` slice bit-exactly.
    pub fn f64s(&mut self) -> io::Result<Vec<f64>> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a tensor written by [`Encoder::put_tensor`].
    pub fn tensor(&mut self) -> io::Result<Tensor> {
        let r = self.u32()? as usize;
        let c = self.u32()? as usize;
        let elems = r.checked_mul(c).ok_or_else(|| bad("tensor shape overflow"))?;
        let total = elems.checked_mul(4).ok_or_else(|| bad("tensor shape overflow"))?;
        if total > self.remaining() {
            return Err(bad("tensor data exceeds remaining checkpoint bytes"));
        }
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(self.f32()?);
        }
        Ok(Tensor::from_vec(r, c, data))
    }

    /// Asserts the buffer is fully consumed (guards against schema drift).
    pub fn finish(self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(bad(format!(
                "{} trailing bytes after checkpoint payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// A named-section checkpoint container with a verified on-disk framing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a named section.
    pub fn insert(&mut self, name: &str, bytes: Vec<u8>) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = bytes;
        } else {
            self.sections.push((name.to_string(), bytes));
        }
    }

    /// Section contents by name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, b)| b.as_slice())
    }

    /// Section contents by name, as an `InvalidData` error when missing.
    pub fn require(&self, name: &str) -> io::Result<&[u8]> {
        self.get(name).ok_or_else(|| bad(format!("checkpoint missing section '{name}'")))
    }

    /// Section names in insertion order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Serializes header + payload + checksum into one buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Encoder::new();
        payload.put_u32(self.sections.len() as u32);
        for (name, bytes) in &self.sections {
            payload.put_str(name);
            payload.put_bytes(bytes);
        }
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and verifies a buffer written by [`Checkpoint::to_bytes`].
    /// Truncation, version mismatch, and checksum failures are all rejected
    /// up front — a checkpoint is applied whole or not at all.
    pub fn from_bytes(buf: &[u8]) -> io::Result<Self> {
        if buf.len() < HEADER_LEN {
            return Err(bad("checkpoint shorter than its header"));
        }
        if &buf[..4] != MAGIC {
            return Err(bad("not an IMCK checkpoint"));
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(bad(format!("unsupported checkpoint version {version}")));
        }
        let payload_len = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let checksum = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let payload = &buf[HEADER_LEN..];
        if payload.len() as u64 != payload_len {
            return Err(bad(format!(
                "checkpoint payload truncated: header says {payload_len} bytes, file has {}",
                payload.len()
            )));
        }
        if fnv1a64(payload) != checksum {
            return Err(bad("checkpoint checksum mismatch"));
        }
        let mut dec = Decoder::new(payload);
        let n = dec.u32()? as usize;
        let mut sections = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = dec.str()?.to_string();
            let bytes = dec.bytes()?.to_vec();
            sections.push((name, bytes));
        }
        dec.finish()?;
        Ok(Self { sections })
    }

    /// Atomically writes the checkpoint to `path`, returning the bytes
    /// written. The sequence is: serialize to `<path>.tmp`, fsync, rotate any
    /// existing `<path>` to `<path>.prev`, rename the tmp file into place,
    /// fsync the directory. A kill at any point leaves `<path>` or
    /// `<path>.prev` as a complete, verifiable checkpoint.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<u64> {
        let path = path.as_ref();
        let sp = imcat_obs::span("ckpt.save.seconds");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let bytes = self.to_bytes();
        let tmp = sibling(path, ".tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if path.exists() {
            // Keep the previous checkpoint loadable until the new one has
            // fully landed; rename-over would also be atomic, but an explicit
            // .prev lets a reader fall back after filesystem-level corruption
            // of the primary file, not just a mid-write kill.
            let _ = std::fs::rename(path, sibling(path, ".prev"));
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                // Persist both renames; ignore filesystems that refuse
                // directory fsync rather than failing the save.
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        drop(sp);
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ckpt.saves", 1);
            imcat_obs::counter_add("ckpt.bytes_written", bytes.len() as u64);
        }
        Ok(bytes.len() as u64)
    }

    /// Loads and verifies the checkpoint at `path`; when the primary file is
    /// missing, truncated, or corrupted, falls back to `<path>.prev` (the
    /// previous checkpoint) before giving up. The returned error is the
    /// primary file's when both fail, `NotFound` when neither exists.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let _sp = imcat_obs::span("ckpt.load.seconds");
        let primary = Self::load_one(path);
        match primary {
            Ok(ck) => Ok(ck),
            Err(primary_err) => {
                let prev = sibling(path, ".prev");
                match Self::load_one(&prev) {
                    Ok(ck) => {
                        if imcat_obs::enabled() {
                            imcat_obs::counter_add("ckpt.fallbacks", 1);
                            imcat_obs::emit(
                                "checkpoint_fallback",
                                vec![
                                    ("path", imcat_obs::Json::Str(path.display().to_string())),
                                    ("error", imcat_obs::Json::Str(primary_err.to_string())),
                                ],
                            );
                        }
                        Ok(ck)
                    }
                    Err(prev_err) => {
                        if primary_err.kind() == ErrorKind::NotFound
                            && prev_err.kind() == ErrorKind::NotFound
                        {
                            Err(primary_err)
                        } else if primary_err.kind() == ErrorKind::NotFound {
                            Err(prev_err)
                        } else {
                            Err(primary_err)
                        }
                    }
                }
            }
        }
    }

    fn load_one(path: &Path) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// Section holding the committed generation pointer (a single `u64`).
///
/// Generation-versioned containers let a live artifact be *staged* next to
/// the one being served: a background rebuild writes its sections under a
/// `gen<N>.` prefix (one atomic [`Checkpoint::save`]), and a second save
/// flips this pointer and prunes the superseded generation. A crash between
/// the two saves leaves the pointer on the old generation, so recovery
/// always lands on a complete, consistent artifact — never a half-swapped
/// one.
pub const SEC_GENERATION: &str = "generation.current";

/// `gen<g>.` prefix parser: `Some((g, rest))` for generation-tagged section
/// names, `None` for bare (legacy / generation-0) names.
fn parse_gen(name: &str) -> Option<(u64, &str)> {
    let rest = name.strip_prefix("gen")?;
    let dot = rest.find('.')?;
    let g: u64 = rest[..dot].parse().ok()?;
    Some((g, &rest[dot + 1..]))
}

impl Checkpoint {
    /// The generation-tagged name of `name` under generation `gen`.
    pub fn gen_name(gen: u64, name: &str) -> String {
        format!("gen{gen}.{name}")
    }

    /// The committed generation pointer, if the container carries one.
    /// Containers written before generations existed have none and resolve
    /// through their bare section names.
    pub fn generation(&self) -> io::Result<Option<u64>> {
        let Some(bytes) = self.get(SEC_GENERATION) else {
            return Ok(None);
        };
        let mut dec = Decoder::new(bytes);
        let g = dec.u64()?;
        dec.finish()?;
        Ok(Some(g))
    }

    /// Sets the committed generation pointer (does not prune; see
    /// [`Checkpoint::commit_generation`]).
    pub fn set_generation(&mut self, gen: u64) {
        let mut enc = Encoder::new();
        enc.put_u64(gen);
        self.insert(SEC_GENERATION, enc.into_bytes());
    }

    /// Inserts every section of `staged` under the `gen<g>.` prefix, leaving
    /// the committed generation untouched. This is the first half of a
    /// two-save swap: stage + save, then [`Checkpoint::commit_generation`] +
    /// save. A kill between the saves is recovered by resolution ignoring
    /// uncommitted generations.
    pub fn stage_generation(&mut self, gen: u64, staged: &Checkpoint) {
        for (name, bytes) in &staged.sections {
            self.insert(&Self::gen_name(gen, name), bytes.clone());
        }
    }

    /// Commits generation `gen`: flips the pointer and prunes every section
    /// belonging to another generation, plus any bare section shadowed by
    /// the committed generation (the pre-generation layout it supersedes).
    pub fn commit_generation(&mut self, gen: u64) {
        self.set_generation(gen);
        let shadowed: Vec<String> = self
            .sections
            .iter()
            .filter_map(|(n, _)| parse_gen(n))
            .filter(|&(g, _)| g == gen)
            .map(|(_, rest)| rest.to_string())
            .collect();
        self.sections.retain(|(name, _)| {
            if name == SEC_GENERATION {
                return true;
            }
            match parse_gen(name) {
                Some((g, _)) => g == gen,
                None => !shadowed.iter().any(|s| s == name),
            }
        });
    }

    /// Resolves `name` through the committed generation: the committed
    /// `gen<g>.name` section when a pointer exists and the section is
    /// present, the bare `name` otherwise. Staged-but-uncommitted
    /// generations are invisible here by construction.
    pub fn resolve(&self, name: &str) -> Option<&[u8]> {
        if let Ok(Some(g)) = self.generation() {
            if let Some(bytes) = self.get(&Self::gen_name(g, name)) {
                return Some(bytes);
            }
        }
        self.get(name)
    }

    /// [`Checkpoint::resolve`] as an `InvalidData` error when missing.
    pub fn require_resolved(&self, name: &str) -> io::Result<&[u8]> {
        self.resolve(name)
            .ok_or_else(|| bad(format!("checkpoint missing resolvable section '{name}'")))
    }
}

/// `<path><suffix>` as a sibling file (`foo.ckpt` → `foo.ckpt.tmp`).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

/// Encodes every parameter of `store` (name, shape, values) bit-exactly.
pub fn encode_store(store: &ParamStore) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(store.len() as u32);
    for (_, p) in store.iter() {
        enc.put_str(p.name());
        enc.put_tensor(p.value());
    }
    enc.into_bytes()
}

/// Restores parameter values captured by [`encode_store`] into `store`.
/// Strict by design: parameter count, order, names, and shapes must all
/// match the identically-constructed model, otherwise nothing is applied.
pub fn restore_store(store: &mut ParamStore, bytes: &[u8]) -> io::Result<()> {
    let mut dec = Decoder::new(bytes);
    let n = dec.u32()? as usize;
    if n != store.len() {
        return Err(bad(format!("checkpoint has {n} parameters, model has {}", store.len())));
    }
    // Decode (and thereby verify) everything before touching the store.
    let mut loaded = Vec::with_capacity(n);
    for _ in 0..n {
        let name = dec.str()?.to_string();
        let value = dec.tensor()?;
        loaded.push((name, value));
    }
    dec.finish()?;
    let ids: Vec<_> = store.iter().map(|(id, p)| (id, p.name().to_string())).collect();
    for ((id, have), (want, value)) in ids.iter().zip(&loaded) {
        if have != want {
            return Err(bad(format!(
                "checkpoint parameter '{want}' does not match model '{have}'"
            )));
        }
        if store.value(*id).shape() != value.shape() {
            return Err(bad(format!(
                "shape mismatch for '{want}': checkpoint {:?}, model {:?}",
                value.shape(),
                store.value(*id).shape()
            )));
        }
    }
    for ((id, _), (_, value)) in ids.iter().zip(loaded) {
        *store.value_mut(*id) = value;
    }
    Ok(())
}

/// Encodes the lazy Adam state: global step, first/second moments, and the
/// per-row last-update steps that drive the `beta^Δt` stale-row decay.
pub fn encode_adam(adam: &Adam) -> Vec<u8> {
    let (m, v, last, t) = adam.export_state();
    let mut enc = Encoder::new();
    enc.put_u64(t);
    enc.put_u32(m.len() as u32);
    for ((mi, vi), li) in m.iter().zip(v).zip(last) {
        enc.put_tensor(mi);
        enc.put_tensor(vi);
        enc.put_u64s(li);
    }
    enc.into_bytes()
}

/// Restores optimizer state captured by [`encode_adam`] into an Adam
/// instance built over the identically-shaped parameter store.
pub fn restore_adam(adam: &mut Adam, bytes: &[u8]) -> io::Result<()> {
    let mut dec = Decoder::new(bytes);
    let t = dec.u64()?;
    let n = dec.u32()? as usize;
    let mut m = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    let mut last = Vec::with_capacity(n);
    for _ in 0..n {
        m.push(dec.tensor()?);
        v.push(dec.tensor()?);
        last.push(dec.u64s()?);
    }
    dec.finish()?;
    adam.restore_state(m, v, last, t).map_err(bad)
}

/// Encodes a backbone's full mutable training state: parameters plus
/// optimizer. This is the whole state for the factorization/GNN backbones —
/// their samplers are deterministic functions of the dataset.
pub fn encode_backbone_state(store: &ParamStore, adam: &Adam) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_bytes(&encode_store(store));
    enc.put_bytes(&encode_adam(adam));
    enc.into_bytes()
}

/// Restores state captured by [`encode_backbone_state`].
pub fn restore_backbone_state(
    store: &mut ParamStore,
    adam: &mut Adam,
    bytes: &[u8],
) -> io::Result<()> {
    let mut dec = Decoder::new(bytes);
    let store_bytes = dec.bytes()?;
    let adam_bytes = dec.bytes()?;
    dec.finish()?;
    restore_store(store, store_bytes)?;
    restore_adam(adam, adam_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new();
        let mut enc = Encoder::new();
        enc.put_u64(42);
        enc.put_f64(2.5);
        enc.put_str("hello");
        ck.insert("alpha", enc.into_bytes());
        ck.insert("beta", vec![1, 2, 3]);
        ck
    }

    #[test]
    fn container_roundtrip() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ck, back);
        let mut dec = Decoder::new(back.get("alpha").unwrap());
        assert_eq!(dec.u64().unwrap(), 42);
        assert_eq!(dec.f64().unwrap(), 2.5);
        assert_eq!(dec.str().unwrap(), "hello");
        dec.finish().unwrap();
    }

    #[test]
    fn insert_replaces_existing_section() {
        let mut ck = sample();
        ck.insert("beta", vec![9]);
        assert_eq!(ck.get("beta"), Some(&[9u8][..]));
        assert_eq!(ck.section_names().count(), 2);
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn corruption_is_rejected_everywhere() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Checkpoint::from_bytes(&bad).is_err(), "flip at byte {i} was accepted");
        }
    }

    #[test]
    fn decoder_rejects_oversized_length_prefix() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).bytes().is_err());
        assert!(Decoder::new(&bytes).u64s().is_err());
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        let mut enc = Encoder::new();
        for v in [0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE, 1.5e-40] {
            enc.put_f32(v);
        }
        enc.put_f64(f64::NEG_INFINITY);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for v in [0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE, 1.5e-40] {
            assert_eq!(dec.f32().unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(dec.f64().unwrap().to_bits(), f64::NEG_INFINITY.to_bits());
    }

    #[test]
    fn save_load_and_prev_fallback() {
        let dir = std::env::temp_dir().join(format!("imck_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");

        let first = sample();
        first.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), first);

        let mut second = sample();
        second.insert("gamma", vec![7, 7]);
        second.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), second);
        // The first checkpoint was rotated to .prev.
        assert_eq!(Checkpoint::load_one(&sibling(&path, ".prev")).unwrap(), first);

        // Truncate the primary mid-"write": the loader falls back to .prev.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), first);

        // Remove both: NotFound.
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(sibling(&path, ".prev")).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap_err().kind(), ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_roundtrip_and_strictness() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(2, 2, vec![1.0, -2.0, f32::NAN, 0.5]));
        let b = store.add("b", Tensor::scalar(7.0));
        let bytes = encode_store(&store);

        let mut dst = ParamStore::new();
        let da = dst.add("a", Tensor::zeros(2, 2));
        let db = dst.add("b", Tensor::scalar(0.0));
        restore_store(&mut dst, &bytes).unwrap();
        for (src_id, dst_id) in [(a, da), (b, db)] {
            let want: Vec<u32> =
                store.value(src_id).as_slice().iter().map(|x| x.to_bits()).collect();
            let got: Vec<u32> = dst.value(dst_id).as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(want, got);
        }

        // Wrong name, wrong shape, wrong count: all rejected, store untouched.
        let mut wrong_name = ParamStore::new();
        wrong_name.add("x", Tensor::zeros(2, 2));
        wrong_name.add("b", Tensor::scalar(0.0));
        assert!(restore_store(&mut wrong_name, &bytes).is_err());

        let mut wrong_shape = ParamStore::new();
        let ws = wrong_shape.add("a", Tensor::zeros(1, 4));
        wrong_shape.add("b", Tensor::scalar(0.0));
        assert!(restore_store(&mut wrong_shape, &bytes).is_err());
        assert_eq!(wrong_shape.value(ws).as_slice(), &[0.0; 4]);

        let mut wrong_count = ParamStore::new();
        wrong_count.add("a", Tensor::zeros(2, 2));
        assert!(restore_store(&mut wrong_count, &bytes).is_err());
    }

    #[test]
    fn adam_roundtrip_preserves_moments_and_steps() {
        use imcat_tensor::{AdamConfig, Tape};
        let mut store = ParamStore::new();
        let id = store.add("emb", Tensor::from_vec(3, 2, vec![0.5; 6]));
        let mut adam = Adam::new(AdamConfig::default(), &store);
        // Drive a few steps (each touching one embedding row) so moments and
        // last-update steps are non-trivial.
        for step in 0..3u32 {
            let mut tape = Tape::new();
            let rows = tape.gather(&store, id, &[step % 3]);
            let loss = tape.sum_all(rows);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        let bytes = encode_adam(&adam);

        let mut fresh = Adam::new(AdamConfig::default(), &store);
        restore_adam(&mut fresh, &bytes).unwrap();
        let (m0, v0, l0, t0) = adam.export_state();
        let (m1, v1, l1, t1) = fresh.export_state();
        assert_eq!(t0, t1);
        assert_eq!(l0, l1);
        for (a, b) in m0.iter().zip(m1).chain(v0.iter().zip(v1)) {
            let wa: Vec<u32> = a.as_slice().iter().map(|x| x.to_bits()).collect();
            let wb: Vec<u32> = b.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(wa, wb);
        }

        // Shape mismatch: rejected.
        let mut small_store = ParamStore::new();
        small_store.add("emb", Tensor::zeros(2, 2));
        let mut small = Adam::new(AdamConfig::default(), &small_store);
        assert!(restore_adam(&mut small, &bytes).is_err());
    }
}
