//! # imcat-bench
//!
//! Experiment harness regenerating every table and figure of the IMCAT paper
//! (see DESIGN.md §3 for the experiment index). Each binary under `src/bin/`
//! prints the paper's rows/series and writes machine-readable JSON under
//! `target/experiments/`.

#![warn(missing_docs)]

pub mod registry;
pub mod runner;

pub use registry::ModelKind;
pub use runner::{
    all_preset_keys, mean_of, obs_finish, obs_init, preset_by_key, run_one, run_parallel,
    run_trials, write_json, Env, ExpLog, RunResult,
};
