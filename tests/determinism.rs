//! Thread-count invariance: the whole point of `imcat-par` is that the pool
//! parallelizes over disjoint output partitions whose boundaries and
//! per-partition accumulation order never depend on the number of workers, so
//! training losses and evaluation metrics must be *bit-identical* between a
//! serial run and any parallel run.

use imcat::prelude::*;
use std::sync::{Mutex, OnceLock};

fn tiny_split(seed: u64) -> SplitDataset {
    let synth = generate(&SynthConfig::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    synth.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

/// The pool is process-global, so tests that reconfigure it must not overlap.
fn pool_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` under a pool of exactly `threads` workers, restoring the default
/// pool afterwards, and returns the result.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    imcat_par::set_threads(threads);
    let out = f();
    imcat_par::set_threads(imcat_par::default_threads());
    out
}

/// Train losses (bitwise) and per-user eval metrics (bitwise) for BPR-MF.
fn bprmf_fingerprint() -> (Vec<u32>, Vec<u64>, Vec<u64>) {
    let split = tiny_split(2);
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    let mut losses = Vec::new();
    for _ in 0..3 {
        losses.push(model.train_epoch(&mut rng).loss.to_bits());
    }
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let per_user = evaluate_per_user(&mut score_fn, &split, &EvalSpec::at(20));
    let recall_bits = per_user.recall.iter().map(|r| r.to_bits()).collect();
    let ndcg_bits = per_user.ndcg.iter().map(|n| n.to_bits()).collect();
    (losses, recall_bits, ndcg_bits)
}

/// Same fingerprint for the full IMCAT model (backbone + alignment losses).
fn imcat_fingerprint() -> (Vec<u32>, Vec<u64>, Vec<u64>) {
    let split = tiny_split(4);
    let mut rng = StdRng::seed_from_u64(5);
    let backbone = Bprmf::new(&split, TrainConfig::default(), &mut rng);
    let mut model = Imcat::new(
        backbone,
        &split,
        ImcatConfig { pretrain_epochs: 1, ..Default::default() },
        &mut rng,
    );
    let mut losses = Vec::new();
    for _ in 0..3 {
        losses.push(model.train_epoch(&mut rng).loss.to_bits());
    }
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let per_user = evaluate_per_user(&mut score_fn, &split, &EvalSpec::at(20));
    let recall_bits = per_user.recall.iter().map(|r| r.to_bits()).collect();
    let ndcg_bits = per_user.ndcg.iter().map(|n| n.to_bits()).collect();
    (losses, recall_bits, ndcg_bits)
}

#[test]
fn bprmf_training_and_eval_are_thread_count_invariant() {
    let _guard = pool_lock().lock().unwrap();
    let serial = with_threads(1, bprmf_fingerprint);
    let parallel = with_threads(4, bprmf_fingerprint);
    assert_eq!(serial.0, parallel.0, "training losses must be bit-identical");
    assert_eq!(serial.1, parallel.1, "per-user recall must be bit-identical");
    assert_eq!(serial.2, parallel.2, "per-user NDCG must be bit-identical");
}

#[test]
fn imcat_training_and_eval_are_thread_count_invariant() {
    let _guard = pool_lock().lock().unwrap();
    let serial = with_threads(1, imcat_fingerprint);
    let parallel = with_threads(4, imcat_fingerprint);
    assert_eq!(serial.0, parallel.0, "training losses must be bit-identical");
    assert_eq!(serial.1, parallel.1, "per-user recall must be bit-identical");
    assert_eq!(serial.2, parallel.2, "per-user NDCG must be bit-identical");
}

#[test]
fn two_thread_pool_matches_wider_pools() {
    let _guard = pool_lock().lock().unwrap();
    let two = with_threads(2, bprmf_fingerprint);
    let eight = with_threads(8, bprmf_fingerprint);
    assert_eq!(two, eight, "any two pool widths must agree bit-for-bit");
}
