//! Frozen inference artifacts: the serving-side counterpart of a training
//! checkpoint.
//!
//! An [`Artifact`] captures everything `imcat-serve` needs to answer
//! `recommend(user, k)` requests without touching the tape, autodiff, or
//! optimizer: the resolved post-propagation user/item embedding matrices and
//! each user's sorted training-item mask. It is written in the same `IMCK`
//! section container as training checkpoints ([`Checkpoint`]), so it inherits
//! the atomic tmp+fsync+rename write path, the `.prev` rotation/fallback, and
//! whole-file checksum verification — a truncated or corrupted artifact is
//! rejected as a unit, never partially loaded.

use std::io;
use std::path::Path;

use imcat_tensor::Tensor;

use crate::{bad, Checkpoint, Decoder, Encoder};

/// Section holding the model name and the matrix/mask dimensions.
const SEC_META: &str = "artifact.meta";
/// Section holding the resolved `[n_users, d]` user embedding matrix.
const SEC_USER_EMB: &str = "artifact.user_emb";
/// Section holding the resolved `[n_items, d]` item embedding matrix.
const SEC_ITEM_EMB: &str = "artifact.item_emb";
/// Section holding the per-user sorted training-item masks.
const SEC_MASKS: &str = "artifact.masks";

/// A frozen top-K inference artifact: resolved embeddings plus per-user
/// training-item masks, such that user `u`'s relevance for item `j` is
/// exactly `user_emb[u] · item_emb[j]` and served rankings exclude `masks[u]`.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Name of the model that produced the embeddings (for telemetry and
    /// sanity checks; the serving engine is model-agnostic).
    pub model: String,
    /// Resolved `[n_users, d]` user embeddings.
    pub user_emb: Tensor,
    /// Resolved `[n_items, d]` item embeddings.
    pub item_emb: Tensor,
    /// Per-user sorted, deduplicated training-item ids, masked out of served
    /// rankings exactly as the evaluator masks them.
    pub masks: Vec<Vec<u32>>,
}

impl Artifact {
    /// Bundles resolved embeddings and masks into an artifact (not yet
    /// validated; see [`Artifact::validate`]).
    pub fn new(
        model: impl Into<String>,
        user_emb: Tensor,
        item_emb: Tensor,
        masks: Vec<Vec<u32>>,
    ) -> Self {
        Self { model: model.into(), user_emb, item_emb, masks }
    }

    /// Number of users the artifact serves.
    pub fn n_users(&self) -> usize {
        self.user_emb.rows()
    }

    /// Number of items in the catalogue.
    pub fn n_items(&self) -> usize {
        self.item_emb.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.user_emb.cols()
    }

    /// Structural validation: consistent shapes, finite embeddings, and
    /// per-user masks that are strictly increasing with in-range item ids.
    /// Load and save both go through this, so an artifact that decodes is an
    /// artifact the serving engine can trust blindly.
    pub fn validate(&self) -> io::Result<()> {
        if self.user_emb.cols() != self.item_emb.cols() {
            return Err(bad(format!(
                "artifact embedding dims differ: users {:?} vs items {:?}",
                self.user_emb.shape(),
                self.item_emb.shape()
            )));
        }
        if self.masks.len() != self.n_users() {
            return Err(bad(format!(
                "artifact has {} masks for {} users",
                self.masks.len(),
                self.n_users()
            )));
        }
        let nonfinite = self
            .user_emb
            .as_slice()
            .iter()
            .chain(self.item_emb.as_slice())
            .filter(|v| !v.is_finite())
            .count();
        if nonfinite > 0 {
            return Err(bad(format!("artifact embeddings contain {nonfinite} nonfinite values")));
        }
        let n_items = self.n_items() as u32;
        for (u, mask) in self.masks.iter().enumerate() {
            if !mask.windows(2).all(|w| w[0] < w[1]) {
                return Err(bad(format!("mask for user {u} is not strictly increasing")));
            }
            if mask.last().is_some_and(|&j| j >= n_items) {
                return Err(bad(format!("mask for user {u} references item >= {n_items}")));
            }
        }
        Ok(())
    }

    /// Serializes into the `IMCK` section container.
    pub fn to_checkpoint(&self) -> Checkpoint {
        let mut ck = Checkpoint::new();
        let mut meta = Encoder::new();
        meta.put_str(&self.model);
        meta.put_u64(self.n_users() as u64);
        meta.put_u64(self.n_items() as u64);
        meta.put_u64(self.dim() as u64);
        ck.insert(SEC_META, meta.into_bytes());
        let mut ue = Encoder::new();
        ue.put_tensor(&self.user_emb);
        ck.insert(SEC_USER_EMB, ue.into_bytes());
        let mut ve = Encoder::new();
        ve.put_tensor(&self.item_emb);
        ck.insert(SEC_ITEM_EMB, ve.into_bytes());
        let mut ms = Encoder::new();
        ms.put_u64(self.masks.len() as u64);
        for mask in &self.masks {
            ms.put_u32s(mask);
        }
        ck.insert(SEC_MASKS, ms.into_bytes());
        ck
    }

    /// Decodes and validates an artifact; on any error nothing partial
    /// escapes — the caller either gets a fully validated artifact or an
    /// error.
    pub fn from_checkpoint(ck: &Checkpoint) -> io::Result<Self> {
        let mut meta = Decoder::new(ck.require_resolved(SEC_META)?);
        let model = meta.str()?.to_string();
        let n_users = meta.u64()? as usize;
        let n_items = meta.u64()? as usize;
        let dim = meta.u64()? as usize;
        meta.finish()?;
        let mut ue = Decoder::new(ck.require_resolved(SEC_USER_EMB)?);
        let user_emb = ue.tensor()?;
        ue.finish()?;
        let mut ve = Decoder::new(ck.require_resolved(SEC_ITEM_EMB)?);
        let item_emb = ve.tensor()?;
        ve.finish()?;
        if user_emb.shape() != (n_users, dim) {
            return Err(bad(format!(
                "user embedding shape {:?} contradicts meta ({n_users}, {dim})",
                user_emb.shape()
            )));
        }
        if item_emb.shape() != (n_items, dim) {
            return Err(bad(format!(
                "item embedding shape {:?} contradicts meta ({n_items}, {dim})",
                item_emb.shape()
            )));
        }
        let mut ms = Decoder::new(ck.require_resolved(SEC_MASKS)?);
        let n_masks = ms.u64()? as usize;
        if n_masks != n_users {
            return Err(bad(format!("artifact has {n_masks} masks for {n_users} users")));
        }
        let mut masks = Vec::with_capacity(n_masks);
        for _ in 0..n_masks {
            masks.push(ms.u32s()?);
        }
        ms.finish()?;
        let art = Self { model, user_emb, item_emb, masks };
        art.validate()?;
        Ok(art)
    }

    /// Validates, then atomically writes the artifact (tmp+fsync+rename with
    /// `.prev` rotation). Returns the bytes written.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<u64> {
        self.validate()?;
        let bytes = self.to_checkpoint().save(path)?;
        if imcat_obs::enabled() {
            imcat_obs::counter_add("artifact.saves", 1);
        }
        Ok(bytes)
    }

    /// Loads and validates an artifact, falling back to `<path>.prev` when
    /// the primary file is corrupt (the [`Checkpoint::load`] discipline).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::from_checkpoint(&Checkpoint::load(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let user_emb = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let item_emb = Tensor::from_vec(4, 3, vec![0.5; 12]);
        Artifact::new("BPRMF", user_emb, item_emb, vec![vec![0, 2], vec![1, 3]])
    }

    #[test]
    fn roundtrips_through_container() {
        let art = sample();
        let back = Artifact::from_checkpoint(&art.to_checkpoint()).unwrap();
        assert_eq!(back.model, "BPRMF");
        assert_eq!(back.user_emb.as_slice(), art.user_emb.as_slice());
        assert_eq!(back.item_emb.as_slice(), art.item_emb.as_slice());
        assert_eq!(back.masks, art.masks);
    }

    #[test]
    fn rejects_unsorted_mask() {
        let mut art = sample();
        art.masks[0] = vec![2, 0];
        assert!(art.validate().is_err());
    }

    #[test]
    fn rejects_out_of_range_mask() {
        let mut art = sample();
        art.masks[1] = vec![1, 99];
        assert!(art.validate().is_err());
    }

    #[test]
    fn rejects_mask_count_mismatch() {
        let mut art = sample();
        art.masks.pop();
        assert!(art.validate().is_err());
    }

    #[test]
    fn rejects_dim_mismatch() {
        let mut art = sample();
        art.item_emb = Tensor::zeros(4, 5);
        assert!(art.validate().is_err());
    }

    #[test]
    fn rejects_nonfinite_embeddings() {
        let mut art = sample();
        art.user_emb.row_mut(0)[1] = f32::NAN;
        assert!(art.validate().is_err());
    }
}
