//! Resume-determinism harness for CI: proves that killing a training run at
//! an epoch boundary and resuming it from the checkpoint produces final
//! metrics **bit-identical** to an uninterrupted run.
//!
//! Three modes, driven by the first argument:
//!
//! * `full <out.json>`              — train B-IMCAT for all epochs with no
//!   checkpointing and write the deterministic fingerprint.
//! * `interrupt <ckpt_dir>`         — train the *same* configuration but stop
//!   at the halfway point, checkpointing every epoch (simulates a kill at an
//!   epoch boundary). Writes nothing.
//! * `resume <ckpt_dir> <out.json>` — rerun the full configuration against
//!   the same checkpoint directory; the trainer resumes mid-training and the
//!   fingerprint is written. The process exits non-zero if the run did *not*
//!   actually resume from a checkpoint.
//!
//! The fingerprint holds only run-deterministic fields — metric `f64::to_bits`
//! values, epoch counts, and the validation-recall trajectory — never
//! wall-clock times, so CI can `cmp` the JSON files byte-for-byte across
//! `full` and `interrupt`+`resume`, at any `IMCAT_THREADS`.
//!
//! Usage: `cargo run --release -p imcat-bench --bin resume_check -- <mode> ...`

use std::path::PathBuf;

use imcat_bench::ModelKind;
use imcat_core::{train, ImcatConfig, TrainerConfig};
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_eval::{evaluate_per_user, EvalSpec};
use imcat_models::TrainConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FULL_EPOCHS: usize = 8;
const INTERRUPT_AT: usize = 4;
const SEED: u64 = 7;

fn dataset() -> SplitDataset {
    let d = generate(&SynthConfig::tiny(), 11);
    let mut rng = StdRng::seed_from_u64(12);
    d.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

fn trainer_config(max_epochs: usize, ckpt_dir: Option<PathBuf>) -> TrainerConfig {
    TrainerConfig {
        max_epochs,
        // Large enough that early stopping never truncates this short run,
        // so `full` and `interrupt`+`resume` cover identical epoch ranges.
        patience: 100,
        eval_every: 2,
        eval_at: 20,
        seed: SEED,
        checkpoint_every: if ckpt_dir.is_some() { 1 } else { 0 },
        checkpoint_dir: ckpt_dir,
        artifact_path: None,
    }
}

/// Trains B-IMCAT for `max_epochs` and returns `(report, recall_bits,
/// ndcg_bits)` with the test metrics evaluated bit-exactly.
fn run(max_epochs: usize, ckpt_dir: Option<PathBuf>) -> (imcat_core::TrainReport, u64, u64) {
    let data = dataset();
    let tcfg = TrainConfig { dim: 16, ..TrainConfig::default() };
    let icfg = ImcatConfig { pretrain_epochs: 1, ..ImcatConfig::default() };
    let mut model = ModelKind::BImcat.build(&data, &tcfg, &icfg, SEED);
    let report = train(model.as_mut(), &data, &trainer_config(max_epochs, ckpt_dir));
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let agg = evaluate_per_user(&mut score_fn, &data, &EvalSpec::at(20)).aggregate();
    (report, agg.recall.to_bits(), agg.ndcg.to_bits())
}

/// Renders the deterministic fingerprint: every field is an integer (metric
/// bits, epochs), so the serialization itself is byte-stable.
fn fingerprint(report: &imcat_core::TrainReport, recall_bits: u64, ndcg_bits: u64) -> String {
    let curve: Vec<String> = report
        .curve
        .iter()
        .map(|(epoch, recall)| format!("[{epoch},{}]", recall.to_bits()))
        .collect();
    format!(
        "{{\n  \"model\": \"{}\",\n  \"seed\": {SEED},\n  \"epochs_run\": {},\n  \
         \"best_val_recall_bits\": {},\n  \"final_loss_bits\": {},\n  \
         \"recall_bits\": {recall_bits},\n  \"ndcg_bits\": {ndcg_bits},\n  \
         \"curve\": [{}]\n}}\n",
        report.model,
        report.epochs_run,
        report.best_val_recall.to_bits(),
        report.final_loss.to_bits(),
        curve.join(",")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: resume_check full <out.json> | interrupt <ckpt_dir> | \
                 resume <ckpt_dir> <out.json>";
    match args.first().map(String::as_str) {
        Some("full") => {
            let out = args.get(1).expect(usage);
            let (report, recall_bits, ndcg_bits) = run(FULL_EPOCHS, None);
            std::fs::write(out, fingerprint(&report, recall_bits, ndcg_bits))
                .expect("cannot write fingerprint");
            println!("full: {} epochs, recall_bits={recall_bits}", report.epochs_run);
        }
        Some("interrupt") => {
            let dir = PathBuf::from(args.get(1).expect(usage));
            let (report, ..) = run(INTERRUPT_AT, Some(dir));
            assert!(report.resumed_from.is_none(), "interrupt segment must start fresh");
            println!("interrupted after epoch {}", report.epochs_run);
        }
        Some("resume") => {
            let dir = PathBuf::from(args.get(1).expect(usage));
            let out = args.get(2).expect(usage);
            let (report, recall_bits, ndcg_bits) = run(FULL_EPOCHS, Some(dir));
            assert_eq!(
                report.resumed_from,
                Some(INTERRUPT_AT),
                "resume segment must pick up from the interrupt checkpoint"
            );
            std::fs::write(out, fingerprint(&report, recall_bits, ndcg_bits))
                .expect("cannot write fingerprint");
            println!(
                "resumed from epoch {} to {}, recall_bits={recall_bits}",
                INTERRUPT_AT, report.epochs_run
            );
        }
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}
