//! Item-axis sharding: N engine replicas over contiguous item ranges, with
//! a merge layer whose output is bit-identical to one unsharded engine.
//!
//! ## Why this is exact
//!
//! [`imcat_eval::top_n_masked_with`] ranks under the *canonical* order
//! (score descending, then item id ascending) — a strict total order with
//! no ties. The selected head is therefore a pure function of the candidate
//! **set**: any superset of the canonical global top-K selects exactly that
//! top-K. Each shard returns its own canonical top-`k` over a disjoint item
//! range, so the union of the per-shard lists always contains the global
//! head; re-ranking the union through the same selection path reproduces
//! the unsharded answer exactly — same items, same order, same score bits —
//! at any shard count and any `IMCAT_THREADS` setting.
//!
//! With ANN enabled, each replica builds its configured index (IVF lists or
//! an HNSW graph) over its own item slice. Exactness then carries whatever
//! recall contract the per-shard probes have: at exhaustive probe settings
//! (`nprobe == nlist`, `ef_search == n`) the guarantee above holds
//! bit-exactly; at lossy probe settings the union is still re-ranked with
//! exact scores, so any deviation is pure recall loss, never a wrong score.

use std::io;

use imcat_ckpt::Artifact;
use imcat_eval::{top_n_masked_with, TopKScratch};
use imcat_serve::{
    AnnDescriptor, Engine, Interaction, Recommendation, ServeConfig, ServeError, ServeStats,
};
use imcat_tensor::Tensor;

/// Splits `n_items` into `n_shards` contiguous, near-equal `[lo, hi)`
/// ranges covering the whole catalog in order.
pub fn shard_ranges(n_items: usize, n_shards: usize) -> Vec<(usize, usize)> {
    (0..n_shards).map(|s| (s * n_items / n_shards, (s + 1) * n_items / n_shards)).collect()
}

/// Restricts an artifact to the item range `[lo, hi)`: item embedding rows
/// are sliced, and every user mask is filtered to the range and shifted to
/// shard-local ids. User embeddings are carried whole — each replica must
/// be able to score any user against its item slice.
pub fn shard_artifact(artifact: &Artifact, lo: usize, hi: usize) -> Artifact {
    let dim = artifact.dim();
    let item_emb =
        Tensor::from_vec(hi - lo, dim, artifact.item_emb.as_slice()[lo * dim..hi * dim].to_vec());
    let masks = artifact
        .masks
        .iter()
        .map(|mask| {
            // Masks are sorted ascending, so the in-range run is contiguous.
            let a = mask.partition_point(|&x| (x as usize) < lo);
            let b = mask.partition_point(|&x| (x as usize) < hi);
            mask[a..b].iter().map(|&x| x - lo as u32).collect()
        })
        .collect();
    Artifact { model: artifact.model.clone(), user_emb: artifact.user_emb.clone(), item_emb, masks }
}

struct Shard {
    /// First global item id held by this replica.
    base: u32,
    engine: Engine,
    /// Per-tick answer scratch, filled by the parallel fan-out.
    out: Vec<Result<Vec<Recommendation>, ServeError>>,
}

/// N engine replicas sharded on the item axis behind a merge layer.
///
/// In-process stand-in for a scale-out deployment where each replica would
/// live on its own machine: requests fan out to every shard over the
/// [`imcat_par`] pool and per-shard top-K lists are merged exactly (see the
/// module docs for why the merge is bit-identical to one unsharded engine).
pub struct ShardedEngine {
    shards: Vec<Shard>,
    n_users: u32,
    n_items: usize,
    scratch: TopKScratch,
    /// Merge buffer: `(global item id, score)` union of per-shard lists.
    union: Vec<(u32, f32)>,
    scores: Vec<f32>,
}

impl ShardedEngine {
    /// Builds `n_shards` replicas over `artifact`. Every replica gets the
    /// shared `cfg` (cache, ANN); with ANN active each replica builds its
    /// configured index over its own item slice.
    pub fn new(artifact: &Artifact, cfg: &ServeConfig, n_shards: usize) -> io::Result<Self> {
        let n_items = artifact.n_items();
        if n_shards == 0 || n_shards > n_items {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("n_shards must be in [1, {n_items}], got {n_shards}"),
            ));
        }
        let shards = shard_ranges(n_items, n_shards)
            .into_iter()
            .map(|(lo, hi)| {
                let engine = Engine::new(shard_artifact(artifact, lo, hi), cfg.clone())?;
                Ok(Shard { base: lo as u32, engine, out: Vec::new() })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            n_users: artifact.n_users() as u32,
            n_items,
            scratch: TopKScratch::default(),
            union: Vec::new(),
            scores: Vec::new(),
        })
    }

    /// Number of replicas.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Users servable by every replica.
    pub fn n_users(&self) -> usize {
        self.n_users as usize
    }

    /// Global catalogue size (sum of the shard ranges).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Per-replica serving statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shards.iter().map(|s| s.engine.stats()).collect()
    }

    /// Per-replica ANN backend descriptors, in shard order (`None` for a
    /// replica serving brute force without an index). Surfaced through the
    /// front-end's `/stats` route so operators can see which backend is
    /// live on each shard and what parameters it resolved to.
    pub fn ann_descriptors(&self) -> Vec<Option<AnnDescriptor>> {
        self.shards.iter().map(|s| s.engine.ann_descriptor()).collect()
    }

    /// The shard owning global item id `item` (bases are ascending, so the
    /// owner is the last shard whose base is `<= item`).
    fn owner_of(&self, item: u32) -> usize {
        self.shards.partition_point(|s| s.base <= item) - 1
    }

    /// Registers a cold user on **every** replica (user embeddings are
    /// carried whole per shard, so ids stay aligned) and returns the new
    /// global id.
    pub fn register_user(&mut self) -> u32 {
        let id = self.n_users;
        for shard in &mut self.shards {
            shard.engine.register_user();
        }
        self.n_users += 1;
        id
    }

    /// Registers a cold item and returns its global id. Item ranges are
    /// contiguous, so the new tail id belongs to the **last** replica; the
    /// others never learn it exists (their slices are unchanged).
    pub fn register_item(&mut self) -> u32 {
        let id = self.n_items as u32;
        self.shards.last_mut().expect("at least one shard").engine.register_item();
        self.n_items += 1;
        id
    }

    /// Ingests one interaction, routing it to the replica owning the item
    /// (shard-local id). Validation is global, so a rejected interaction
    /// reports global ranges.
    pub fn ingest(&mut self, x: Interaction) -> Result<(), ServeError> {
        if x.user >= self.n_users {
            return Err(ServeError::UserOutOfRange { user: x.user, n_users: self.n_users });
        }
        if x.item as usize >= self.n_items {
            return Err(ServeError::ItemOutOfRange { item: x.item, n_items: self.n_items as u32 });
        }
        let s = self.owner_of(x.item);
        let local = Interaction { user: x.user, item: x.item - self.shards[s].base };
        self.shards[s].engine.ingest(local)
    }

    /// Ingests a batch in order, one result per interaction.
    pub fn ingest_batch(&mut self, xs: &[Interaction]) -> Vec<Result<(), ServeError>> {
        xs.iter().map(|&x| self.ingest(x)).collect()
    }

    /// Folds pending cold entities on every replica. With more than one
    /// shard, a cold user folds per replica from the evidence that replica
    /// holds — the honest in-process stand-in for scale-out, where each
    /// machine folds from the interactions it has seen. At the default
    /// single shard this is exactly [`Engine::fold_pending`]. Returns the
    /// total embeddings written across replicas.
    pub fn fold_pending(&mut self) -> usize {
        self.shards.iter_mut().map(|s| s.engine.fold_pending()).sum()
    }

    /// Answers one request through the full fan-out/merge path.
    pub fn recommend(&mut self, user: u32, k: usize) -> Result<Vec<Recommendation>, ServeError> {
        self.recommend_batch(&[(user, k)]).pop().unwrap_or(Err(ServeError::ZeroK))
    }

    /// Answers a tick of requests: the whole tick fans out to every replica
    /// in parallel (`recommend_batch` per replica), then each slot's
    /// per-shard lists are merged. Output order matches `requests`; a
    /// malformed request yields its own `Err` slot (every replica rejects
    /// it identically) and never disturbs the rest of the tick.
    pub fn recommend_batch(
        &mut self,
        requests: &[(u32, usize)],
    ) -> Vec<Result<Vec<Recommendation>, ServeError>> {
        // Fan out: one task per replica. Nested dispatch inside each
        // engine's own scoring path degrades to inline serial, so results
        // are independent of the pool's thread count.
        imcat_par::global().parallel_chunks_mut(&mut self.shards, 1, |_, chunk| {
            for shard in chunk {
                shard.out = shard.engine.recommend_batch(requests);
            }
        });
        (0..requests.len()).map(|i| self.merge_slot(i, requests[i].1)).collect()
    }

    /// Merges request slot `i`: union the per-shard lists, re-rank through
    /// the evaluator's canonical selection.
    fn merge_slot(&mut self, i: usize, k: usize) -> Result<Vec<Recommendation>, ServeError> {
        self.union.clear();
        for shard in &self.shards {
            match &shard.out[i] {
                // Validation is artifact-global (user range, k), so every
                // replica rejects a malformed request identically.
                Err(e) => return Err(*e),
                Ok(recs) => {
                    self.union.extend(recs.iter().map(|r| (shard.base + r.item, r.score)));
                }
            }
        }
        // `top_n_masked_with` indexes candidates by position, so present the
        // union in ascending global-id order — exactly the enumeration order
        // an unsharded scan would use. (Order only matters for reading the
        // ids back out: the canonical ranking itself is order-independent.)
        self.union.sort_unstable_by_key(|&(item, _)| item);
        self.scores.clear();
        self.scores.extend(self.union.iter().map(|&(_, s)| s));
        let top = top_n_masked_with(&self.scores, &[], k, &mut self.scratch);
        Ok(top
            .iter()
            .map(|&ci| {
                let (item, score) = self.union[ci as usize];
                Recommendation { item, score }
            })
            .collect())
    }
}
