//! Lock-free histogram cells shared between one writer thread and any number
//! of reader threads.
//!
//! Every cell in a registry shard is written by exactly one thread (the shard
//! owner) and read by whoever calls `snapshot()`. That single-writer
//! discipline lets the hot path use plain `load`/`store` pairs with `Relaxed`
//! ordering — no read-modify-write instructions, no locks — while readers
//! see a racy-but-monotonic view that is perfectly adequate for telemetry.
//!
//! Two layers live here:
//!
//! * [`HistCore`] — the atomic twin of [`crate::Histogram`]: 27 log2 buckets
//!   plus count/sum/min/max, mergeable into the plain struct.
//! * [`AtomicHistogram`] — a cumulative [`HistCore`] plus a ring of
//!   [`WINDOW_SLOTS`] epoch-stamped slots so sliding-window percentiles can
//!   be computed over the last `IMCAT_OBS_WINDOW_SECS` seconds.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

use crate::{Histogram, BUCKET_BOUNDS};

/// Number of bucket cells: one per bound plus the overflow slot.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// Number of slots in the sliding-window ring. With the default 60 s window
/// each slot covers 7.5 s; percentile queries merge the slots still inside
/// the window, so readings lag by at most one slot width.
pub const WINDOW_SLOTS: usize = 8;

/// Sliding-window length in seconds (`IMCAT_OBS_WINDOW_SECS`, default 60,
/// clamped to at least [`WINDOW_SLOTS`] so every slot spans ≥ 1 s).
pub fn window_seconds() -> u64 {
    static SECS: OnceLock<u64> = OnceLock::new();
    *SECS.get_or_init(|| {
        std::env::var("IMCAT_OBS_WINDOW_SECS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(60)
            .max(WINDOW_SLOTS as u64)
    })
}

/// Seconds covered by one window slot.
pub fn slot_seconds() -> u64 {
    window_seconds() / WINDOW_SLOTS as u64
}

/// Epoch of the window slot containing the current instant. Offset by one so
/// that 0 always means "slot never written".
pub fn current_slot() -> u64 {
    crate::now_seconds() as u64 / slot_seconds() + 1
}

/// Bucket index for value `v`: exactly the bucket the linear scan
/// `BUCKET_BOUNDS.iter().position(|&b| v <= b)` would pick (overflow bucket
/// when no bound matches, which includes NaN), but O(1) via the exponent.
#[inline]
pub fn bucket_index(v: f64) -> usize {
    let last = BUCKET_BOUNDS.len() - 1;
    if v.is_nan() || v > BUCKET_BOUNDS[last] {
        return BUCKET_BOUNDS.len();
    }
    if v <= BUCKET_BOUNDS[0] {
        return 0;
    }
    // Bounds are 1µs·2^i, so the exponent of v/1µs lands within one bucket of
    // the right answer; the fix-up loops make the result bit-exact with the
    // scan even when the division or log rounds across a boundary.
    let mut i = ((v * 1.0e6).log2().ceil()) as usize;
    i = i.min(last);
    while i > 0 && v <= BUCKET_BOUNDS[i - 1] {
        i -= 1;
    }
    while v > BUCKET_BOUNDS[i] {
        i += 1;
    }
    i
}

/// Atomic histogram cell: single-writer `record`, multi-reader `merge_into`.
#[derive(Debug)]
pub struct HistCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for HistCore {
    fn default() -> Self {
        Self::new()
    }
}

impl HistCore {
    /// Zeroed cell.
    pub fn new() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            min_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    /// Records one value. Must only be called from the owning thread: uses
    /// plain load+store (no RMW), which is only correct with a single writer.
    #[inline]
    pub fn record(&self, v: f64) {
        let idx = bucket_index(v);
        let b = &self.buckets[idx];
        b.store(b.load(Relaxed) + 1, Relaxed);
        let n = self.count.load(Relaxed);
        if n == 0 {
            self.min_bits.store(v.to_bits(), Relaxed);
            self.max_bits.store(v.to_bits(), Relaxed);
        } else {
            let lo = f64::from_bits(self.min_bits.load(Relaxed));
            let hi = f64::from_bits(self.max_bits.load(Relaxed));
            self.min_bits.store(lo.min(v).to_bits(), Relaxed);
            self.max_bits.store(hi.max(v).to_bits(), Relaxed);
        }
        let s = f64::from_bits(self.sum_bits.load(Relaxed));
        self.sum_bits.store((s + v).to_bits(), Relaxed);
        // Count is published last so a reader that sees count > 0 also sees
        // initialised min/max bits.
        self.count.store(n + 1, Relaxed);
    }

    /// Number of recorded values (racy cross-thread read).
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Zeroes every field. Safe to call from any thread; concurrent writers
    /// may lose the bump in flight, which is acceptable for a reset.
    pub fn clear(&self) {
        self.count.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.sum_bits.store(0, Relaxed);
        self.min_bits.store(0, Relaxed);
        self.max_bits.store(0, Relaxed);
    }

    /// Folds this cell into a plain [`Histogram`] (reader side).
    pub fn merge_into(&self, h: &mut Histogram) {
        let n = self.count.load(Relaxed);
        if n == 0 {
            return;
        }
        let lo = f64::from_bits(self.min_bits.load(Relaxed));
        let hi = f64::from_bits(self.max_bits.load(Relaxed));
        if h.count == 0 {
            h.min = lo;
            h.max = hi;
        } else {
            h.min = h.min.min(lo);
            h.max = h.max.max(hi);
        }
        h.count += n;
        h.sum += f64::from_bits(self.sum_bits.load(Relaxed));
        for (dst, src) in h.buckets.iter_mut().zip(&self.buckets) {
            *dst += src.load(Relaxed);
        }
    }
}

/// One slot of the sliding-window ring: an epoch stamp plus a cell. Epoch 0
/// means the slot has never been written.
#[derive(Debug, Default)]
pub struct WindowSlot {
    epoch: AtomicU64,
    core: HistCore,
}

/// Cumulative histogram plus a sliding-window ring, one per (shard, name).
#[derive(Debug)]
pub struct AtomicHistogram {
    cum: HistCore,
    slots: [WindowSlot; WINDOW_SLOTS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Zeroed histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            cum: HistCore::new(),
            slots: std::array::from_fn(|_| WindowSlot::default()),
        }
    }

    /// Records `v` into the cumulative cell and the window slot for `slot`
    /// (from [`current_slot`]). Owner thread only.
    #[inline]
    pub fn record(&self, v: f64, slot: u64) {
        self.cum.record(v);
        let w = &self.slots[(slot % WINDOW_SLOTS as u64) as usize];
        if w.epoch.load(Relaxed) != slot {
            // The slot last held an epoch that has since rotated out of the
            // window; clear before stamping so readers never mix epochs.
            w.core.clear();
            w.epoch.store(slot, Relaxed);
        }
        w.core.record(v);
    }

    /// Cumulative recordings in this cell.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cum.count()
    }

    /// Folds the cumulative cell into `h`.
    pub fn merge_cumulative(&self, h: &mut Histogram) {
        self.cum.merge_into(h);
    }

    /// Folds every slot still inside the window ending at `now_slot` into
    /// `h`.
    pub fn merge_window(&self, h: &mut Histogram, now_slot: u64) {
        for w in &self.slots {
            let e = w.epoch.load(Relaxed);
            if e != 0 && e + WINDOW_SLOTS as u64 > now_slot {
                w.core.merge_into(h);
            }
        }
    }

    /// Zeroes the cumulative cell and all window slots.
    pub fn clear(&self) {
        self.cum.clear();
        for w in &self.slots {
            w.epoch.store(0, Relaxed);
            w.core.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_index(v: f64) -> usize {
        BUCKET_BOUNDS.iter().position(|&b| v <= b).unwrap_or(BUCKET_BOUNDS.len())
    }

    #[test]
    fn bucket_index_matches_linear_scan() {
        let mut probes = vec![0.0, -1.0, f64::NAN, f64::INFINITY, 1e-9, 1e9];
        for &b in &BUCKET_BOUNDS {
            probes.extend([b, b * (1.0 - 1e-12), b * (1.0 + 1e-12), b * 1.5]);
        }
        for v in probes {
            assert_eq!(bucket_index(v), scan_index(v), "v = {v}");
        }
    }

    #[test]
    fn core_record_and_merge_roundtrip() {
        let core = HistCore::new();
        let mut reference = Histogram::default();
        for v in [1.0e-6, 3.0e-4, 0.25, 40.0, 1.0e9] {
            core.record(v);
            reference.record(v);
        }
        let mut merged = Histogram::default();
        core.merge_into(&mut merged);
        assert_eq!(merged.count, reference.count);
        assert_eq!(merged.buckets, reference.buckets);
        assert_eq!(merged.min, reference.min);
        assert_eq!(merged.max, reference.max);
        assert!((merged.sum - reference.sum).abs() < 1e-9);
    }

    #[test]
    fn window_slots_expire() {
        let h = AtomicHistogram::new();
        h.record(0.5, 10);
        let mut w = Histogram::default();
        h.merge_window(&mut w, 10);
        assert_eq!(w.count, 1);
        // Advance past the ring length: the old slot falls out of the window.
        let mut w = Histogram::default();
        h.merge_window(&mut w, 10 + WINDOW_SLOTS as u64);
        assert_eq!(w.count, 0);
        // The cumulative cell keeps it.
        let mut c = Histogram::default();
        h.merge_cumulative(&mut c);
        assert_eq!(c.count, 1);
        // Re-using the slot index at a later epoch clears stale contents.
        h.record(0.25, 10 + WINDOW_SLOTS as u64);
        let mut w = Histogram::default();
        h.merge_window(&mut w, 10 + WINDOW_SLOTS as u64);
        assert_eq!(w.count, 1);
        assert_eq!(w.max, 0.25);
    }
}
