//! Fig. 6 — effect of the ISA threshold δ ∈ {0.1, 0.3, 0.5, 0.7, 0.9},
//! reported as the ratio of each setting's R@20 to the R@20 obtained
//! *without* the ISA module (values > 1 mean ISA helps).
//!
//! Usage: `cargo run --release -p imcat-bench --bin fig6_threshold`

use imcat_bench::{logln, preset_by_key, run_trials, write_json, Env, ExpLog, ModelKind};
use imcat_core::ImcatConfig;

struct Point {
    model: String,
    dataset: String,
    delta: f64,
    recall: f64,
    ratio_vs_no_isa: f64,
}
imcat_obs::impl_to_json!(Point { model, dataset, delta, recall, ratio_vs_no_isa });

fn main() {
    let env = Env::from_env();
    let deltas = [0.1f32, 0.3, 0.5, 0.7, 0.9];
    let mut log = ExpLog::new("fig6_threshold");
    let mut points = Vec::new();
    logln!(log, "Fig. 6: ISA threshold δ sweep (R@20 ratio vs no-ISA)\n");
    for key in ["del", "cite"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        logln!(log, "== {} ==", data.name);
        for kind in [ModelKind::NImcat, ModelKind::LImcat] {
            let base_cfg = env.imcat_config().without_isa();
            let (base_results, _) = run_trials(kind, &data, &env, &base_cfg);
            let base = imcat_bench::mean_of(&base_results, |r| r.recall);
            let mut line =
                format!("{:<10} (no-ISA R@20 {:.2}%) ratios:", kind.name(), base * 100.0);
            for &delta in &deltas {
                let icfg = ImcatConfig { delta, use_isa: true, ..env.imcat_config() };
                let (results, _) = run_trials(kind, &data, &env, &icfg);
                let recall = imcat_bench::mean_of(&results, |r| r.recall);
                let ratio = if base > 0.0 { recall / base } else { 0.0 };
                line.push_str(&format!(" {ratio:>6.3}"));
                points.push(Point {
                    model: kind.name().to_string(),
                    dataset: data.name.clone(),
                    delta: delta as f64,
                    recall,
                    ratio_vs_no_isa: ratio,
                });
            }
            logln!(log, "{line}   (δ = {deltas:?})");
        }
        logln!(log);
    }
    let path = write_json("fig6_threshold", &points);
    logln!(log, "wrote {}", path.display());
}
