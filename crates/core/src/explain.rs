//! Intent-level explanation of recommendations.
//!
//! The paper motivates intent disentanglement with interpretability: each
//! sub-embedding pair `(u^k, v^k)` captures one factor behind an interaction
//! (§IV-A), and tag cluster `k` names that factor. This module decomposes a
//! user–item relevance score into per-intent contributions and surfaces the
//! tags that ground each intent, turning the learned structure into
//! human-readable evidence ("recommended mainly for intent 2: tags 7, 13").

use imcat_models::Backbone;
use imcat_tensor::Tape;

use crate::model::Imcat;

/// One intent's share of a user–item relevance score.
#[derive(Clone, Debug)]
pub struct IntentContribution {
    /// Intent index `k`.
    pub intent: usize,
    /// Inner product of the intent sub-embeddings `u^k · v^k`.
    pub score: f32,
    /// The item's relatedness `M[item][k]` to this intent (Eq. 9).
    pub item_relatedness: f32,
    /// Tags of the item that belong to this intent's cluster.
    pub supporting_tags: Vec<u32>,
}

/// A decomposed explanation of one recommendation.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The explained user.
    pub user: u32,
    /// The explained item.
    pub item: u32,
    /// Total relevance (sum of intent scores; equals the dot product of the
    /// resolved embeddings for dot-product backbones).
    pub total: f32,
    /// Per-intent breakdown, sorted by descending score.
    pub contributions: Vec<IntentContribution>,
}

impl Explanation {
    /// The index of the strongest intent.
    pub fn dominant_intent(&self) -> usize {
        self.contributions.first().map_or(0, |c| c.intent)
    }
}

impl<B: Backbone> Imcat<B> {
    /// Decomposes the relevance of `(user, item)` into per-intent
    /// contributions. Requires clustering to be active (i.e. pre-training
    /// finished); returns `None` before that.
    pub fn explain(&self, user: u32, item: u32) -> Option<Explanation> {
        let assignment = self.cluster_assignment()?.to_vec();
        let m = self.relatedness()?.clone();
        let k_intents = self.config().k_intents;
        let d = self.backbone().dim();
        let dk = d / k_intents;
        // Resolved embeddings (propagated for GNN backbones).
        let mut tape = Tape::new();
        let (u_all, v_all) = self.backbone().embed_all(&mut tape);
        let u_row = tape.value(u_all).row(user as usize).to_vec();
        let v_row = tape.value(v_all).row(item as usize).to_vec();
        let item_tags = self.item_tags(item);
        let mut contributions: Vec<IntentContribution> = (0..k_intents)
            .map(|k| {
                let lo = k * dk;
                let score: f32 =
                    u_row[lo..lo + dk].iter().zip(&v_row[lo..lo + dk]).map(|(a, b)| a * b).sum();
                let supporting_tags: Vec<u32> =
                    item_tags.iter().copied().filter(|&t| assignment[t as usize] == k).collect();
                IntentContribution {
                    intent: k,
                    score,
                    item_relatedness: m.get(item as usize, k),
                    supporting_tags,
                }
            })
            .collect();
        let total = contributions.iter().map(|c| c.score).sum();
        contributions.sort_by(|a, b| b.score.total_cmp(&a.score));
        Some(Explanation { user, item, total, contributions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImcatConfig;
    use imcat_models::test_util::tiny_split;
    use imcat_models::{Bprmf, RecModel, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model() -> (Imcat<Bprmf>, imcat_data::SplitDataset) {
        let data = tiny_split(401);
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let mut model = Imcat::new(
            bb,
            &data,
            ImcatConfig { pretrain_epochs: 2, ..Default::default() },
            &mut rng,
        );
        for _ in 0..6 {
            model.train_epoch(&mut rng);
        }
        (model, data)
    }

    #[test]
    fn explanation_unavailable_before_clustering() {
        let data = tiny_split(402);
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let model = Imcat::new(
            bb,
            &data,
            ImcatConfig { pretrain_epochs: 10, ..Default::default() },
            &mut rng,
        );
        assert!(model.explain(0, 0).is_none());
    }

    #[test]
    fn intent_scores_sum_to_total_dot_product() {
        let (model, _) = trained_model();
        let e = model.explain(0, 3).expect("clustering active");
        assert_eq!(e.contributions.len(), 4);
        let sum: f32 = e.contributions.iter().map(|c| c.score).sum();
        assert!((sum - e.total).abs() < 1e-5);
        // For BPRMF, total must equal the model's own relevance score.
        let scores = model.score_users(&[0]);
        assert!((scores.get(0, 3) - e.total).abs() < 1e-4);
    }

    #[test]
    fn contributions_sorted_and_tags_respect_clusters() {
        let (model, data) = trained_model();
        let assignment = model.cluster_assignment().unwrap().to_vec();
        let e = model.explain(2, 5).unwrap();
        for w in e.contributions.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let item_tags: Vec<u32> = data.item_tag.forward().row_indices(5).to_vec();
        for c in &e.contributions {
            for &t in &c.supporting_tags {
                assert_eq!(assignment[t as usize], c.intent);
                assert!(item_tags.contains(&t));
            }
        }
        // Every tag of the item appears in exactly one intent's evidence.
        let total_tags: usize = e.contributions.iter().map(|c| c.supporting_tags.len()).sum();
        assert_eq!(total_tags, item_tags.len());
        assert!(e.dominant_intent() < 4);
    }
}
