//! Intent-aware Set-to-set Alignment (paper §IV-C): for each intent `k`,
//! items whose cluster-`k` tag sets have Jaccard index above `δ` (Eq. 15)
//! form sets of mutually similar items; alignment positives are drawn from
//! these sets, enriching supervision for long-tail items.

use imcat_graph::ClusterTagSets;
use imcat_tensor::Csr;
use rand::Rng;

/// Per-intent similar-item sets `S_j^k`.
#[derive(Clone, Debug, Default)]
pub struct SimilarSets {
    /// `sets[k][j]` = items similar to `j` under intent `k`.
    sets: Vec<Vec<Vec<u32>>>,
}

impl SimilarSets {
    /// Builds all `S_j^k` from the item–tag incidence, the current tag
    /// cluster assignment, and the threshold `δ`.
    pub fn build(item_tag: &Csr, assignment: &[usize], k_intents: usize, delta: f32) -> Self {
        let sets = (0..k_intents)
            .map(|k| {
                ClusterTagSets::from_assignment(item_tag, assignment, k).all_similar_sets(delta)
            })
            .collect();
        Self { sets }
    }

    /// Similar items of `j` under intent `k`.
    pub fn of(&self, k: usize, j: usize) -> &[u32] {
        &self.sets[k][j]
    }

    /// Number of intents covered.
    pub fn n_intents(&self) -> usize {
        self.sets.len()
    }

    /// Samples up to `max_pos` distinct similar items of `j` under intent `k`.
    pub fn sample(&self, k: usize, j: usize, max_pos: usize, rng: &mut impl Rng) -> Vec<u32> {
        let pool = &self.sets[k][j];
        if pool.len() <= max_pos {
            return pool.clone();
        }
        let mut picked = Vec::with_capacity(max_pos);
        while picked.len() < max_pos {
            let c = pool[rng.gen_range(0..pool.len())];
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        picked
    }

    /// Mean similar-set size under intent `k` (diagnostic for δ sweeps).
    pub fn mean_size(&self, k: usize) -> f64 {
        let total: usize = self.sets[k].iter().map(Vec::len).sum();
        total as f64 / self.sets[k].len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (Csr, Vec<usize>) {
        // Items 0 and 1 share cluster-0 tags heavily (Jaccard 2/3);
        // item 2 is distinct.
        let it = Csr::from_adjacency(3, 7, &[vec![0, 1, 4], vec![0, 1, 2, 5], vec![3, 6]]);
        let assignment = vec![0, 0, 0, 0, 1, 1, 1];
        (it, assignment)
    }

    #[test]
    fn thresholds_control_membership() {
        let (it, a) = toy();
        let loose = SimilarSets::build(&it, &a, 2, 0.1);
        assert_eq!(loose.of(0, 0), &[1]);
        assert_eq!(loose.of(0, 2), &[] as &[u32]);
        let strict = SimilarSets::build(&it, &a, 2, 0.99);
        assert_eq!(strict.of(0, 0), &[] as &[u32]);
    }

    #[test]
    fn sampling_respects_cap_and_uniqueness() {
        let (it, a) = toy();
        let s = SimilarSets::build(&it, &a, 2, 0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let picked = s.sample(0, 0, 5, &mut rng);
        assert_eq!(picked, vec![1]);
        let capped = s.sample(0, 0, 0, &mut rng);
        assert!(capped.is_empty());
    }

    #[test]
    fn mean_size_reflects_density() {
        let (it, a) = toy();
        let loose = SimilarSets::build(&it, &a, 2, 0.1);
        let strict = SimilarSets::build(&it, &a, 2, 0.99);
        assert!(loose.mean_size(0) > strict.mean_size(0));
    }

    #[test]
    fn symmetry_of_similarity() {
        let (it, a) = toy();
        let s = SimilarSets::build(&it, &a, 2, 0.1);
        for k in 0..2 {
            for j in 0..3 {
                for &o in s.of(k, j) {
                    assert!(
                        s.of(k, o as usize).contains(&(j as u32)),
                        "similarity not symmetric: {j} ~ {o} under intent {k}"
                    );
                }
            }
        }
    }
}
