//! Fig. 5 — impact of the number of intents `K ∈ {1, 2, 4, 8, 16}` on
//! N-IMCAT and L-IMCAT (three datasets).
//!
//! Usage: `cargo run --release -p imcat-bench --bin fig5_intents`
//! Note: `K` must divide `IMCAT_DIM` (default 32, so all five K values work).

use imcat_bench::{logln, preset_by_key, run_trials, write_json, Env, ExpLog, ModelKind};
use imcat_core::ImcatConfig;

struct Point {
    model: String,
    dataset: String,
    k: usize,
    recall: f64,
    ndcg: f64,
}
imcat_obs::impl_to_json!(Point { model, dataset, k, recall, ndcg });

fn main() {
    let env = Env::from_env();
    let ks = [1usize, 2, 4, 8, 16];
    let mut log = ExpLog::new("fig5_intents");
    let mut points = Vec::new();
    logln!(log, "Fig. 5: impact of the number of intents K (R@20, %)\n");
    for key in ["fm", "del", "cite"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        logln!(log, "== {} ==", data.name);
        for kind in [ModelKind::NImcat, ModelKind::LImcat] {
            let mut line = format!("{:<10}", kind.name());
            for &k in &ks {
                if !env.dim.is_multiple_of(k) {
                    line.push_str(&format!(" {:>7}", "-"));
                    continue;
                }
                let icfg = ImcatConfig { k_intents: k, ..env.imcat_config() };
                let (results, _) = run_trials(kind, &data, &env, &icfg);
                let recall = imcat_bench::mean_of(&results, |r| r.recall);
                let ndcg = imcat_bench::mean_of(&results, |r| r.ndcg);
                line.push_str(&format!(" {:>7.2}", recall * 100.0));
                points.push(Point {
                    model: kind.name().to_string(),
                    dataset: data.name.clone(),
                    k,
                    recall,
                    ndcg,
                });
            }
            logln!(log, "{line}   (K = {ks:?})");
        }
        logln!(log);
    }
    let path = write_json("fig5_intents", &points);
    logln!(log, "wrote {}", path.display());
}
