//! End-to-end test of the live telemetry endpoint: bind an ephemeral port,
//! record metrics and a trace, then speak HTTP/1.1 over a raw `TcpStream`
//! exactly as a scraper would.

use std::io::{Read, Write};
use std::net::TcpStream;

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

/// One test drives every route: the listener is process-global (a `OnceLock`
/// bound address), so separate #[test] fns would race over shared state.
#[test]
fn endpoint_serves_metrics_traces_and_health() {
    let _guard = imcat_obs::exclusive(true);
    let addr = imcat_obs::http::start("127.0.0.1:0").expect("bind ephemeral port");
    assert_eq!(imcat_obs::http::bound_addr(), Some(addr));
    // Idempotent: a second start returns the same address.
    assert_eq!(imcat_obs::http::start("127.0.0.1:0").expect("restart"), addr);

    imcat_obs::counter_add("serve.requests", 5);
    imcat_obs::observe("serve.request.seconds", 0.002);
    imcat_obs::observe("serve.request.seconds", 0.004);
    let trace_id = {
        let t = imcat_obs::trace::request("serve.request", "serve.request.seconds", true);
        let _s = imcat_obs::span("serve.score.seconds");
        t.id().expect("enabled => id")
    };

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("imcat_serve_requests 5"), "missing counter:\n{body}");
    assert!(body.contains("imcat_serve_request_seconds_count 2"), "missing hist:\n{body}");
    assert!(body.contains("imcat_serve_request_seconds_window{quantile=\"0.99\"}"));
    assert!(!body.contains("NaN"));

    let (status, body) = get(addr, &format!("/trace/{trace_id}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = imcat_obs::Json::parse(&body).expect("trace body is JSON");
    assert_eq!(doc.get("id").and_then(imcat_obs::Json::as_f64), Some(trace_id as f64));
    let spans = doc.get("spans").and_then(imcat_obs::Json::as_array).expect("spans array");
    assert!(
        spans.iter().any(|s| s.get("name").and_then(imcat_obs::Json::as_str)
            == Some("serve.score.seconds")),
        "span missing from trace:\n{body}"
    );

    let (status, body) = get(addr, "/traces");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = imcat_obs::Json::parse(&body).expect("traces body is JSON");
    assert!(doc.get("total").and_then(imcat_obs::Json::as_f64).unwrap_or(0.0) >= 1.0);

    let (status, body) = get(addr, "/snapshot");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = imcat_obs::Json::parse(&body).expect("snapshot body is JSON");
    assert_eq!(
        doc.get("counters").and_then(|c| c.get("serve.requests")).and_then(imcat_obs::Json::as_f64),
        Some(5.0)
    );

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    let (status, _) = get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _) = get(addr, "/trace/999999999");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _) = get(addr, "/trace/not-a-number");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // Query strings must not break routing: Prometheus-style scrapers append
    // cache-busting or timestamp parameters.
    let (status, body) = get(addr, "/healthz?probe=1&ts=2");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");
    let (status, body) = get(addr, "/metrics?format=text");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("imcat_serve_requests"));

    // Slowloris containment: a client that opens a connection and trickles a
    // partial head must be cut off by the total handling deadline (~2 s) —
    // and a well-behaved probe right behind it must still get through.
    let t0 = std::time::Instant::now();
    let mut slow = TcpStream::connect(addr).expect("connect slowloris");
    slow.write_all(b"GET /hea").expect("partial head");
    // The handler is sequential, so this health check queues behind the slow
    // connection and measures how long the server can be stalled.
    let (status, body) = get(addr, "/healthz");
    let stalled = t0.elapsed();
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");
    assert!(
        stalled < std::time::Duration::from_secs(5),
        "slowloris stalled /healthz for {stalled:?} (deadline not enforced)"
    );
    // The slow connection itself is answered with 408 (or dropped), not
    // serviced forever.
    let mut response = String::new();
    slow.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    let _ = slow.read_to_string(&mut response);
    assert!(
        response.is_empty() || response.starts_with("HTTP/1.1 408"),
        "slowloris connection should time out, got: {response}"
    );
}
