//! Fold-in embeddings for cold users and items.
//!
//! A cold entity has no trained embedding, only the interactions it has
//! accumulated at serve time. Fold-in solves the classic regularized
//! least-squares problem against the *frozen opposite side*: for a cold
//! user who interacted with items whose embedding rows form `A` (`m × d`),
//!
//! ```text
//! u* = argmin_u ‖A u − 1‖² + λ‖u‖²  =  (AᵀA + λI)⁻¹ Aᵀ1
//! ```
//!
//! — the user vector whose dot product with every interacted item is pulled
//! toward 1 (implicit-feedback relevance) under a ridge prior. Items fold
//! symmetrically against their interacting users' rows. The normal matrix
//! is accumulated and Cholesky-solved entirely in `f64` (`d` is small), so
//! the result is a deterministic function of the input rows: no RNG, no
//! thread-count dependence, bit-identical everywhere — which is what lets
//! the log-replay rebuild reproduce the live fold bit-for-bit.
//!
//! An optional refinement (`IMCAT_INGEST_FOLD_STEPS > 0`) runs a few
//! full-gradient Adam steps on the same objective starting from the
//! closed-form solution — "lazy Adam" in the fold-in sense: only the one
//! cold row is touched, everything else stays frozen. Full-gradient (not
//! stochastic) on a fixed row set, so it too is deterministic.

/// Fold-in configuration.
#[derive(Clone, Copy, Debug)]
pub struct FoldOptions {
    /// Ridge regularizer λ (`IMCAT_INGEST_FOLD_LAMBDA`, default 0.1).
    pub lambda: f32,
    /// Post-solve Adam refinement steps (`IMCAT_INGEST_FOLD_STEPS`,
    /// default 0 = closed form only).
    pub steps: usize,
}

impl Default for FoldOptions {
    fn default() -> Self {
        Self { lambda: 0.1, steps: 0 }
    }
}

impl FoldOptions {
    /// Reads the fold knobs from the environment (registered in
    /// `imcat_obs::knobs`).
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            lambda: imcat_obs::knob_f32("IMCAT_INGEST_FOLD_LAMBDA", d.lambda).max(1e-6),
            steps: imcat_obs::knob_usize("IMCAT_INGEST_FOLD_STEPS", d.steps),
        }
    }
}

/// Adam hyperparameters for the refinement steps (fixed: the refinement is
/// a polish, not a tunable trainer).
const ADAM_LR: f64 = 0.05;
const ADAM_B1: f64 = 0.9;
const ADAM_B2: f64 = 0.999;
const ADAM_EPS: f64 = 1e-8;

/// Solves the ridge fold-in for one cold entity against the `rows` of the
/// frozen opposite side (each `d` long, visited in the given order).
/// Returns the `d`-dimensional embedding; all-zero when `rows` is empty
/// (no evidence — the entity stays cold).
pub fn fold_embedding(rows: &[&[f32]], dim: usize, opts: &FoldOptions) -> Vec<f32> {
    if rows.is_empty() {
        return vec![0.0; dim];
    }
    let lambda = opts.lambda.max(1e-6) as f64;
    // Normal equations in f64: G = AᵀA + λI (d×d, symmetric positive
    // definite), rhs = Aᵀ1 (column sums).
    let mut g = vec![0.0f64; dim * dim];
    let mut rhs = vec![0.0f64; dim];
    for row in rows {
        debug_assert_eq!(row.len(), dim);
        for i in 0..dim {
            let xi = row[i] as f64;
            rhs[i] += xi;
            for j in i..dim {
                g[i * dim + j] += xi * row[j] as f64;
            }
        }
    }
    for i in 0..dim {
        g[i * dim + i] += lambda;
        for j in 0..i {
            g[i * dim + j] = g[j * dim + i];
        }
    }
    let mut u = cholesky_solve(&mut g, &rhs, dim);
    if opts.steps > 0 {
        adam_refine(&mut u, rows, lambda, opts.steps);
    }
    u.iter().map(|&x| x as f32).collect()
}

/// In-place Cholesky factorization + solve of `G x = rhs` (`G` symmetric
/// positive definite — λI guarantees it). Sequential, f64: deterministic by
/// construction.
fn cholesky_solve(g: &mut [f64], rhs: &[f64], d: usize) -> Vec<f64> {
    // Factor G = L Lᵀ, storing L in the lower triangle.
    for i in 0..d {
        for j in 0..=i {
            let mut s = g[i * d + j];
            for k in 0..j {
                s -= g[i * d + k] * g[j * d + k];
            }
            if i == j {
                // λI keeps the pivot strictly positive; clamp guards the
                // pathological all-zero-row case from producing NaN.
                g[i * d + i] = s.max(1e-12).sqrt();
            } else {
                g[i * d + j] = s / g[j * d + j];
            }
        }
    }
    // Forward substitution L y = rhs.
    let mut y = rhs.to_vec();
    for i in 0..d {
        for k in 0..i {
            y[i] -= g[i * d + k] * y[k];
        }
        y[i] /= g[i * d + i];
    }
    // Back substitution Lᵀ x = y.
    let mut x = y;
    for i in (0..d).rev() {
        for k in i + 1..d {
            x[i] -= g[k * d + i] * x[k];
        }
        x[i] /= g[i * d + i];
    }
    x
}

/// A few full-gradient Adam steps on `‖A u − 1‖² + λ‖u‖²` from the
/// closed-form solution. Fixed row set and hyperparameters, sequential f64
/// accumulation: deterministic.
fn adam_refine(u: &mut [f64], rows: &[&[f32]], lambda: f64, steps: usize) {
    let d = u.len();
    let mut m = vec![0.0f64; d];
    let mut v = vec![0.0f64; d];
    let mut grad = vec![0.0f64; d];
    for t in 1..=steps {
        grad.iter_mut().for_each(|g| *g = 0.0);
        for row in rows {
            let mut pred = 0.0f64;
            for (ui, &xi) in u.iter().zip(*row) {
                pred += ui * xi as f64;
            }
            let resid = pred - 1.0;
            for (gi, &xi) in grad.iter_mut().zip(*row) {
                *gi += 2.0 * resid * xi as f64;
            }
        }
        for (gi, &ui) in grad.iter_mut().zip(u.iter()) {
            *gi += 2.0 * lambda * ui;
        }
        let bc1 = 1.0 - ADAM_B1.powi(t as i32);
        let bc2 = 1.0 - ADAM_B2.powi(t as i32);
        for i in 0..d {
            m[i] = ADAM_B1 * m[i] + (1.0 - ADAM_B1) * grad[i];
            v[i] = ADAM_B2 * v[i] + (1.0 - ADAM_B2) * grad[i] * grad[i];
            u[i] -= ADAM_LR * (m[i] / bc1) / ((v[i] / bc2).sqrt() + ADAM_EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_evidence_stays_cold() {
        let opts = FoldOptions::default();
        assert_eq!(fold_embedding(&[], 4, &opts), vec![0.0; 4]);
    }

    #[test]
    fn single_row_recovers_scaled_direction() {
        // One interacted row x: u* = x / (‖x‖² + λ) — colinear with x, and
        // u·x = ‖x‖²/(‖x‖²+λ) just below 1.
        let row = [1.0f32, 2.0, 0.0];
        let opts = FoldOptions { lambda: 0.5, steps: 0 };
        let u = fold_embedding(&[&row], 3, &opts);
        let scale = 1.0 / (5.0 + 0.5);
        for (got, want) in u.iter().zip([1.0 * scale, 2.0 * scale, 0.0]) {
            assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        }
    }

    #[test]
    fn deterministic_across_calls_and_refinement_reduces_loss() {
        let rows: Vec<Vec<f32>> =
            (0..6).map(|i| (0..8).map(|j| ((i * 8 + j) as f32 * 0.37).sin()).collect()).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let plain = FoldOptions { lambda: 0.1, steps: 0 };
        let a = fold_embedding(&refs, 8, &plain);
        let b = fold_embedding(&refs, 8, &plain);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "fold-in is not deterministic"
        );
        let loss = |u: &[f32]| -> f64 {
            let mut l = 0.0f64;
            for r in &refs {
                let pred: f64 = u.iter().zip(*r).map(|(&a, &b)| a as f64 * b as f64).sum();
                l += (pred - 1.0) * (pred - 1.0);
            }
            l + 0.1 * u.iter().map(|&x| x as f64 * x as f64).sum::<f64>()
        };
        let refined = fold_embedding(&refs, 8, &FoldOptions { lambda: 0.1, steps: 8 });
        // The closed form is the exact minimizer, so refinement can only
        // hold (within Adam's wander) — assert it stays near-optimal rather
        // than that it strictly improves.
        assert!(loss(&refined) <= loss(&a) * 1.05 + 1e-9, "refinement wandered off the optimum");
    }

    #[test]
    fn fold_pulls_scores_toward_one() {
        let rows = [[0.8f32, 0.1, 0.0], [0.7, -0.2, 0.1], [0.9, 0.0, -0.1]];
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let u = fold_embedding(&refs, 3, &FoldOptions { lambda: 0.05, steps: 0 });
        for r in &refs {
            let pred: f32 = u.iter().zip(*r).map(|(a, b)| a * b).sum();
            assert!(pred > 0.5, "fold-in left an interacted item unrelated (score {pred})");
        }
    }
}
