//! Degenerate catalogs must never panic any backend: empty catalog, a
//! single item, fewer items than `k`, and all-duplicate rows all probe to
//! exactly the brute-force answer (tie order included) at exhaustive width
//! for every [`AnnKind`].

use imcat_ann::{AnnConfig, AnnIndex, AnnKind, BruteIndex, ProbeScratch, DEFAULT_BUILD_SEED};
use imcat_tensor::Tensor;

const KINDS: [AnnKind; 3] = [AnnKind::Brute, AnnKind::Ivf, AnnKind::Hnsw];

fn cfg_for(kind: AnnKind) -> AnnConfig {
    AnnConfig { kind, ..AnnConfig::default() }
}

/// Probe fingerprint: compact candidate ids, score bits, remapped mask.
fn fingerprint(scratch: &ProbeScratch) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    (
        scratch.candidates().to_vec(),
        scratch.scores().iter().map(|s| s.to_bits()).collect(),
        scratch.mask().to_vec(),
    )
}

/// Builds every backend over `items` and checks that an exhaustive-width
/// probe (`nprobe = ef = n`) reproduces brute force bitwise for each
/// `(query, mask, k)` case.
fn assert_all_kinds_match_brute(items: &Tensor, cases: &[(Vec<f32>, Vec<u32>, usize)]) {
    let brute = BruteIndex::build(items, DEFAULT_BUILD_SEED);
    for kind in KINDS {
        let idx = cfg_for(kind).build_index(items, DEFAULT_BUILD_SEED);
        assert_eq!(idx.kind(), kind);
        assert_eq!(idx.n_items(), items.rows());
        let mut a = ProbeScratch::default();
        let mut b = ProbeScratch::default();
        let width = items.rows().max(1);
        for (query, mask, k) in cases {
            idx.probe(query, items, mask, *k, width, &mut a);
            brute.probe(query, items, mask, *k, width, &mut b);
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "{} diverged from brute (n={}, k={}, mask={:?})",
                kind.name(),
                items.rows(),
                k,
                mask
            );
        }
    }
}

#[test]
fn empty_catalog_probes_to_empty() {
    let items = Tensor::zeros(0, 4);
    let q = vec![0.5, -0.25, 1.0, 0.0];
    assert_all_kinds_match_brute(&items, &[(q.clone(), vec![], 1), (q, vec![], 10)]);
}

#[test]
fn single_item_catalog() {
    let items = Tensor::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
    let q = vec![1.0, 0.0, -1.0];
    assert_all_kinds_match_brute(
        &items,
        &[
            (q.clone(), vec![], 1),
            (q.clone(), vec![], 5),
            // Masking the only item: everything falls out of the list.
            (q, vec![0], 1),
        ],
    );
}

#[test]
fn fewer_items_than_k() {
    let items = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, -1.0, -1.0]);
    let q = vec![0.7, 0.3];
    assert_all_kinds_match_brute(
        &items,
        &[(q.clone(), vec![], 10), (q.clone(), vec![1], 10), (q, vec![0, 1, 2], 10)],
    );
}

#[test]
fn all_duplicate_rows_keep_tie_order() {
    // Every row bitwise identical: every score ties, so the answer is pure
    // tie-order discipline (ascending item id) — and the HNSW neighbor
    // heuristic must keep zero-distance links instead of pruning the graph
    // into isolated nodes.
    let n = 17usize;
    let row = vec![0.25f32, -0.5, 0.125];
    let mut data = Vec::with_capacity(n * 3);
    for _ in 0..n {
        data.extend_from_slice(&row);
    }
    let items = Tensor::from_vec(n, 3, data);
    let q = vec![1.0, 1.0, 1.0];
    assert_all_kinds_match_brute(
        &items,
        &[(q.clone(), vec![], 5), (q.clone(), vec![0, 4, 16], 20), (q, vec![], n + 4)],
    );
}

/// The same degenerate shapes must also survive *lossy* widths (graph
/// traversal / partial list scans) without panicking — answers may lose
/// recall but every returned score stays exact.
#[test]
fn lossy_widths_never_panic_on_degenerate_catalogs() {
    let shapes: Vec<Tensor> = vec![
        Tensor::zeros(0, 4),
        Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]),
        Tensor::from_vec(2, 4, vec![0.0; 8]),
        Tensor::from_vec(5, 4, [[0.5f32; 4]; 5].concat()),
    ];
    for items in &shapes {
        let q = vec![0.1, 0.2, 0.3, 0.4];
        for kind in KINDS {
            let idx = cfg_for(kind).build_index(items, DEFAULT_BUILD_SEED);
            let mut scratch = ProbeScratch::default();
            for width in [1usize, 2] {
                idx.probe(&q, items, &[], 3, width, &mut scratch);
                for (ci, &id) in scratch.candidates().iter().enumerate() {
                    let exact = imcat_simd::dot(&q, items.row(id as usize));
                    assert_eq!(
                        scratch.scores()[ci].to_bits(),
                        exact.to_bits(),
                        "{}: inexact score on degenerate catalog",
                        kind.name()
                    );
                }
            }
        }
    }
}
