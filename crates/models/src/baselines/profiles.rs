//! Shared tag-profile construction for the profile-based baselines
//! (CFA, DSPR, RippleNet): dense user→tag and item→tag profile matrices
//! derived from the training interactions.

use imcat_data::SplitDataset;
use imcat_tensor::Tensor;

/// Row-normalized dense user→tag profile `normalize(Y_train @ Y')`.
///
/// As the paper notes for CFA/DSPR (§V-E), datasets do not record which user
/// wrote a tag, so a user's profile is assembled from all tags of the items
/// she interacted with.
pub fn user_tag_profiles(data: &SplitDataset) -> Tensor {
    let ut = data.train.forward().matmul_csr(data.item_tag.forward());
    let ut = ut.row_normalized();
    let mut out = Tensor::zeros(data.n_users(), data.n_tags());
    for (u, t, w) in ut.iter() {
        out.set(u as usize, t as usize, w);
    }
    out
}

/// Row-normalized dense item→tag profile.
pub fn item_tag_profiles(data: &SplitDataset) -> Tensor {
    let it = data.item_tag.forward().row_normalized();
    let mut out = Tensor::zeros(data.n_items(), data.n_tags());
    for (v, t, w) in it.iter() {
        out.set(v as usize, t as usize, w);
    }
    out
}

/// Selects profile rows into a fresh `[ids.len(), n_tags]` tensor.
pub fn select_rows(profiles: &Tensor, ids: &[u32]) -> Tensor {
    let mut out = Tensor::zeros(ids.len(), profiles.cols());
    for (i, &id) in ids.iter().enumerate() {
        out.row_mut(i).copy_from_slice(profiles.row(id as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_split;

    #[test]
    fn user_profiles_are_normalized() {
        let data = tiny_split(41);
        let p = user_tag_profiles(&data);
        assert_eq!(p.shape(), (data.n_users(), data.n_tags()));
        for u in 0..data.n_users() {
            let s: f32 = p.row(u).iter().sum();
            if !data.train_items(u).is_empty() {
                assert!((s - 1.0).abs() < 1e-4, "user {u} profile sums to {s}");
            }
        }
    }

    #[test]
    fn item_profiles_cover_tagged_items() {
        let data = tiny_split(42);
        let p = item_tag_profiles(&data);
        for v in 0..data.n_items() {
            let s: f32 = p.row(v).iter().sum();
            let has_tags = data.item_tag.forward().row_nnz(v) > 0;
            assert_eq!(has_tags, s > 0.5, "item {v}");
        }
    }

    #[test]
    fn select_rows_picks_rows() {
        let t = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let s = select_rows(&t, &[2, 0]);
        assert_eq!(s.as_slice(), &[5., 6., 1., 2.]);
    }
}
