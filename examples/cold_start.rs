//! Cold-start study (paper Fig. 8): compare LightGCN against L-IMCAT on the
//! users with fewer than 10 training interactions. IMCAT's set-to-set
//! alignment routes extra supervision to sparsely-observed entities.
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use imcat::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let synth = generate(&SynthConfig::citeulike().scaled(0.6), 11);
    let split = synth.dataset.split((0.7, 0.1, 0.2), &mut rng);
    let cold = cold_start_users(&split, 10);
    println!(
        "{} — {} users total, {} cold (<10 training interactions)\n",
        split.name,
        split.n_users(),
        cold.len()
    );

    let trainer_cfg =
        TrainerConfig { max_epochs: 80, eval_every: 10, patience: 3, ..Default::default() };

    // Plain LightGCN.
    let mut lightgcn = LightGcn::new(&split, TrainConfig::default(), &mut rng);
    let r1 = trainer::train(&mut lightgcn, &split, &trainer_cfg);
    let mut s1 = |users: &[u32]| lightgcn.score_users(users);
    let all1 = evaluate(&mut s1, &split, &EvalSpec::at(20));
    let cold1 = evaluate_user_subset(&mut s1, &split, 20, &cold).aggregate();

    // L-IMCAT.
    let backbone = LightGcn::new(&split, TrainConfig::default(), &mut rng);
    let mut limcat = Imcat::new(
        backbone,
        &split,
        ImcatConfig { pretrain_epochs: 5, ..Default::default() },
        &mut rng,
    );
    let r2 = trainer::train(&mut limcat, &split, &trainer_cfg);
    let mut s2 = |users: &[u32]| limcat.score_users(users);
    let all2 = evaluate(&mut s2, &split, &EvalSpec::at(20));
    let cold2 = evaluate_user_subset(&mut s2, &split, 20, &cold).aggregate();

    println!("{:<10} {:>14} {:>14} {:>8}", "model", "R@20 (all)", "R@20 (cold)", "epochs");
    println!(
        "{:<10} {:>14.4} {:>14.4} {:>8}",
        "LightGCN", all1.recall, cold1.recall, r1.epochs_run
    );
    println!("{:<10} {:>14.4} {:>14.4} {:>8}", "L-IMCAT", all2.recall, cold2.recall, r2.epochs_run);

    let lift = |a: f64, b: f64| if b > 0.0 { (a / b - 1.0) * 100.0 } else { 0.0 };
    println!(
        "\nL-IMCAT vs LightGCN: {:+.1}% overall, {:+.1}% on cold users",
        lift(all2.recall, all1.recall),
        lift(cold2.recall, cold1.recall)
    );
}
