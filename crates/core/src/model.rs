//! The IMCAT plug-in model (paper §IV): wraps any [`Backbone`] and trains the
//! joint objective of Eq. 18,
//! `L = L_UV + α·L_VT + β·L_CA* + γ·L_KL` (+ intent independence),
//! with the pre-training schedule, periodic hard-assignment refresh, and all
//! ablation switches of §V-F.

use std::rc::Rc;

use imcat_data::{BprBatch, BprSampler, ItemBatcher, SplitDataset};
use imcat_graph::Bipartite;
use imcat_models::{bpr_loss, Backbone, EpochStats, RecModel};
use imcat_tensor::{xavier_uniform, Csr, ParamId, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{AlignMode, ClusteringMode, ImcatConfig};
use crate::imca::{cluster_tag_aggregator, masked_info_nce, relatedness_matrix, PositiveMask};
use crate::irm::{
    hard_assignment, kl_loss, kmeans_centers, soft_assignment, soft_assignment_tensor,
    target_distribution,
};
use crate::isa::SimilarSets;

/// Cluster-dependent derived state, rebuilt at every hard-assignment refresh.
struct ClusterState {
    assignment: Vec<usize>,
    /// Per-intent tag mean-aggregators (Eq. 8) and their transposes.
    aggs: Vec<(Rc<Csr>, Rc<Csr>)>,
    /// Intent relatedness `M` (Eq. 9), `[n_items, K]`.
    m: Tensor,
    /// ISA similar sets (§IV-C); empty when ISA is disabled.
    similar: Option<SimilarSets>,
}

/// Per-epoch sums of the scaled terms of Eq. 18. The scaled contributions
/// add up to the total epoch loss exactly, so telemetry consumers can verify
/// the decomposition (`uv + vt + ca + kl + independence == total`).
#[derive(Clone, Copy, Debug, Default)]
struct TermSums {
    uv: f64,
    vt: f64,
    ca: f64,
    kl: f64,
    independence: f64,
}

impl TermSums {
    fn total(&self) -> f64 {
        self.uv + self.vt + self.ca + self.kl + self.independence
    }
}

/// IMCAT wrapped around a recommendation backbone.
pub struct Imcat<B: Backbone> {
    backbone: B,
    cfg: ImcatConfig,
    batch_size: usize,
    dk: usize,
    tag_emb: ParamId,
    centers: ParamId,
    /// Per-intent `(W₀ᵏ, b₀ᵏ)` tag projections (Eq. 10).
    proj: Vec<(ParamId, ParamId)>,
    /// Per-intent `(W₁ᵏ, b₁ᵏ, W₂ᵏ)` non-linear heads (Eq. 14).
    nlt: Vec<(ParamId, ParamId, ParamId)>,
    ui_sampler: BprSampler,
    vt_sampler: BprSampler,
    batcher: ItemBatcher,
    pending_item_batches: Vec<Vec<u32>>,
    /// Item → interacting-users mean aggregation (Eq. 7); batch-restricted
    /// row subsets (and their transposes) are derived from it per step.
    item_user_agg: Rc<Csr>,
    item_tag: Bipartite,
    state: Option<ClusterState>,
    epoch: usize,
    steps_since_refresh: usize,
    refresh_count: u64,
    terms: TermSums,
}

impl<B: Backbone> Imcat<B> {
    /// Wraps `backbone`, registering IMCAT's parameters in its store.
    pub fn new(mut backbone: B, data: &SplitDataset, cfg: ImcatConfig, rng: &mut StdRng) -> Self {
        let d = backbone.dim();
        cfg.validate(d);
        let dk = d / cfg.k_intents;
        {
            let store = backbone.store_mut();
            let tag_emb = store.add("imcat.tag_emb", xavier_uniform(data.n_tags(), d, rng));
            let centers = store.add("imcat.centers", xavier_uniform(cfg.k_intents, d, rng));
            let mut proj = Vec::with_capacity(cfg.k_intents);
            let mut nlt = Vec::with_capacity(cfg.k_intents);
            for k in 0..cfg.k_intents {
                let w0 = store.add(format!("imcat.proj{k}.w"), xavier_uniform(d, dk, rng));
                let b0 = store.add(format!("imcat.proj{k}.b"), Tensor::zeros(1, dk));
                proj.push((w0, b0));
                let w1 = store.add(format!("imcat.nlt{k}.w1"), xavier_uniform(dk, dk, rng));
                let b1 = store.add(format!("imcat.nlt{k}.b1"), Tensor::zeros(1, dk));
                let w2 = store.add(format!("imcat.nlt{k}.w2"), xavier_uniform(dk, dk, rng));
                nlt.push((w1, b1, w2));
            }
            backbone.rebuild_optimizer();
            let agg = data.train.col_mean_aggregator();
            let batch_size = cfg.bpr_batch;
            let align_batch = cfg.align_batch;
            Self {
                cfg,
                batch_size,
                dk,
                tag_emb,
                centers,
                proj,
                nlt,
                ui_sampler: BprSampler::for_user_items(data),
                vt_sampler: BprSampler::for_item_tags(data),
                batcher: ItemBatcher::new(data.n_items(), align_batch),
                pending_item_batches: Vec::new(),
                item_user_agg: Rc::new(agg),
                item_tag: data.item_tag.clone(),
                state: None,
                epoch: 0,
                steps_since_refresh: 0,
                refresh_count: 0,
                terms: TermSums::default(),
                backbone,
            }
        }
    }

    /// Immutable access to the wrapped backbone.
    pub fn backbone(&self) -> &B {
        &self.backbone
    }

    /// The current hard tag-cluster assignment, if clustering has activated.
    pub fn cluster_assignment(&self) -> Option<&[usize]> {
        self.state.as_ref().map(|s| s.assignment.as_slice())
    }

    /// The intent-relatedness matrix `M` (Eq. 9), if available.
    pub fn relatedness(&self) -> Option<&Tensor> {
        self.state.as_ref().map(|s| &s.m)
    }

    /// Whether the model is still in the pre-training phase.
    pub fn pretraining(&self) -> bool {
        self.epoch < self.cfg.pretrain_epochs
    }

    /// Current configuration.
    pub fn config(&self) -> &ImcatConfig {
        &self.cfg
    }

    /// Tags assigned to an item (sorted ascending).
    pub fn item_tags(&self, item: u32) -> Vec<u32> {
        self.item_tag.forward().row_indices(item as usize).to_vec()
    }

    /// Saves all trainable parameters (backbone + IMCAT heads) to a
    /// checkpoint file.
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        imcat_tensor::save_params_to(self.backbone.store(), path)
    }

    /// Restores parameters from a checkpoint produced by
    /// [`Imcat::save_checkpoint`] on an identically-configured model, then
    /// refreshes the cluster-derived state.
    pub fn load_checkpoint(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let loaded = imcat_tensor::load_params_from(path)?;
        imcat_tensor::restore_into(self.backbone.store_mut(), &loaded)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if self.state.is_some() {
            self.refresh_clusters();
        }
        Ok(())
    }

    /// Initializes cluster centers by k-means on the current tag embeddings
    /// (invoked automatically when pre-training ends).
    pub fn init_clusters(&mut self, rng: &mut StdRng) {
        // The k-means seeding is timed separately from refresh_clusters, which
        // opens its own `phase.refresh` span — nesting the same span would
        // double-count the refresh time.
        let centers = {
            let _sp = imcat_obs::span("phase.refresh");
            kmeans_centers(self.backbone.store().value(self.tag_emb), self.cfg.k_intents, 10, rng)
        };
        *self.backbone.store_mut().value_mut(self.centers) = centers;
        self.refresh_clusters();
    }

    /// Recomputes hard assignments and all cluster-derived structures
    /// (paper: every 10 iterations). In the periodic-k-means design ablation
    /// the centers themselves are recomputed here instead of being learned.
    pub fn refresh_clusters(&mut self) {
        let _sp = imcat_obs::span("phase.refresh");
        if _sp.active() {
            imcat_obs::counter_add("cluster.refreshes", 1);
        }
        if self.cfg.clustering == ClusteringMode::PeriodicKmeans {
            self.refresh_count += 1;
            let mut rng = StdRng::seed_from_u64(self.refresh_count);
            let centers = kmeans_centers(
                self.backbone.store().value(self.tag_emb),
                self.cfg.k_intents,
                5,
                &mut rng,
            );
            *self.backbone.store_mut().value_mut(self.centers) = centers;
        }
        let store = self.backbone.store();
        let q = soft_assignment_tensor(
            store.value(self.tag_emb),
            store.value(self.centers),
            self.cfg.eta,
        );
        let assignment = hard_assignment(&q);
        self.rebuild_derived(assignment);
        self.steps_since_refresh = 0;
    }

    /// Rebuilds every cluster-derived structure (aggregators, relatedness,
    /// ISA similar sets) from a given hard assignment. All of it is a
    /// deterministic, RNG-free function of `(assignment, item_tag, cfg)`, so
    /// a checkpoint only needs to persist the assignment itself.
    fn rebuild_derived(&mut self, assignment: Vec<usize>) {
        let aggs = (0..self.cfg.k_intents)
            .map(|k| {
                let a = cluster_tag_aggregator(self.item_tag.forward(), &assignment, k);
                let at = a.transpose();
                (Rc::new(a), Rc::new(at))
            })
            .collect();
        let m = relatedness_matrix(self.item_tag.forward(), &assignment, self.cfg.k_intents);
        let similar = if self.cfg.use_isa {
            Some(SimilarSets::build(
                self.item_tag.forward(),
                &assignment,
                self.cfg.k_intents,
                self.cfg.delta,
            ))
        } else {
            None
        };
        self.state = Some(ClusterState { assignment, aggs, m, similar });
    }

    fn next_item_batch(&mut self, rng: &mut StdRng) -> Vec<u32> {
        if self.pending_item_batches.is_empty() {
            self.pending_item_batches = self.batcher.epoch(rng);
        }
        self.pending_item_batches.pop().unwrap_or_default()
    }

    /// Non-linear head of intent `k` (Eq. 14): `W₂·LeakyReLU(W₁·x + b₁)`.
    fn nlt_forward(&self, tape: &mut Tape, k: usize, x: Var) -> Var {
        let (w1, b1, w2) = self.nlt[k];
        let store = self.backbone.store();
        let w1v = tape.leaf(store, w1);
        let b1v = tape.leaf(store, b1);
        let w2v = tape.leaf(store, w2);
        let h = tape.matmul(x, w1v);
        let h = tape.add_row_vec(h, b1v);
        let h = tape.leaky_relu(h, 0.1);
        tape.matmul(h, w2v)
    }

    /// One pre-training step: `L_UV + α·L_VT` only.
    fn step_pretrain(&mut self, rng: &mut StdRng) -> f32 {
        // Sampling runs before the `phase.forward` span opens so the two
        // phases stay disjoint in the telemetry breakdown.
        let ui = self.ui_sampler.sample(self.batch_size, rng);
        let vt = self.vt_sampler.sample(self.batch_size, rng);
        let mut tape = Tape::new();
        let sp_fwd = imcat_obs::span("phase.forward");
        let (u_all, v_all) = self.backbone.embed_all(&mut tape);
        let loss = self.ranking_losses(&mut tape, u_all, v_all, &ui, &vt);
        let value = tape.value(loss).item();
        drop(sp_fwd);
        tape.backward(loss, self.backbone.store_mut());
        self.backbone.opt_step();
        value
    }

    /// `L_UV + α·L_VT` on an existing tape, over pre-drawn triplet batches.
    fn ranking_losses(
        &mut self,
        tape: &mut Tape,
        u_all: Var,
        v_all: Var,
        batch: &BprBatch,
        vt: &BprBatch,
    ) -> Var {
        let sp = self.backbone.score_pairs(tape, u_all, &batch.anchors, v_all, &batch.positives);
        let sn = self.backbone.score_pairs(tape, u_all, &batch.anchors, v_all, &batch.negatives);
        let l_uv = bpr_loss(tape, sp, sn);
        let store = self.backbone.store();
        let t_all = tape.leaf(store, self.tag_emb);
        let vi = tape.gather_rows(v_all, &vt.anchors);
        let tp = tape.gather_rows(t_all, &vt.positives);
        let tn = tape.gather_rows(t_all, &vt.negatives);
        let sp_t = tape.rowwise_dot(vi, tp);
        let sn_t = tape.rowwise_dot(vi, tn);
        let l_vt = bpr_loss(tape, sp_t, sn_t);
        let l_vt = tape.scale(l_vt, self.cfg.alpha);
        self.terms.uv += tape.value(l_uv).item() as f64;
        self.terms.vt += tape.value(l_vt).item() as f64;
        tape.add(l_uv, l_vt)
    }

    /// The intent-aware contrastive alignment `L_CA*` for one item batch.
    fn alignment_loss(
        &self,
        tape: &mut Tape,
        u_all: Var,
        v_all: Var,
        items: &[u32],
        rng: &mut StdRng,
    ) -> Option<Var> {
        if items.len() < 2 || self.cfg.align == AlignMode::None {
            return None;
        }
        let state = self.state.as_ref()?;
        let store = self.backbone.store();
        let t_all = tape.leaf(store, self.tag_emb);
        // Batch-restricted user aggregator (Eq. 7): SpMM cost scales with the
        // batch's interaction count, not the item-set size.
        let batch_user_agg = Rc::new(self.item_user_agg.select_rows(items));
        let batch_user_agg_t = Rc::new(batch_user_agg.transpose());
        let mut total: Option<Var> = None;
        for k in 0..self.cfg.k_intents {
            // ISA positives: extend the target list with similar items.
            let mut targets: Vec<u32> = items.to_vec();
            let mut positives: Vec<Vec<usize>> = Vec::with_capacity(items.len());
            if let Some(similar) = state.similar.as_ref() {
                for (pos, &j) in items.iter().enumerate() {
                    let mut cols = vec![pos];
                    for extra in similar.sample(k, j as usize, self.cfg.isa_max_pos, rng) {
                        let col = match targets.iter().position(|&t| t == extra) {
                            Some(c) => c,
                            None => {
                                targets.push(extra);
                                targets.len() - 1
                            }
                        };
                        cols.push(col);
                    }
                    positives.push(cols);
                }
            } else {
                positives = (0..items.len()).map(|p| vec![p]).collect();
            }
            let mask = PositiveMask::from_lists(items.len(), targets.len(), &positives);

            // Anchors: per-intent aggregated user representations (Eq. 7).
            let lo = k * self.dk;
            let hi = lo + self.dk;
            let u_k = tape.slice_cols(u_all, lo, hi);
            let anchors = tape.spmm(&batch_user_agg, &batch_user_agg_t, u_k);

            // Targets: z = L2(t̂) ⊕ L2(v^k) per the alignment mode.
            let v_k = tape.slice_cols(v_all, lo, hi);
            let v_rows = tape.gather_rows(v_k, &targets);
            let z = match self.cfg.align {
                AlignMode::NoTags => v_rows,
                AlignMode::Full | AlignMode::NoItems => {
                    let (agg, _) = &state.aggs[k];
                    let target_agg = Rc::new(agg.select_rows(&targets));
                    let target_agg_t = Rc::new(target_agg.transpose());
                    let t_rows = tape.spmm(&target_agg, &target_agg_t, t_all); // [N, d]
                    let (w0, b0) = self.proj[k];
                    let w0v = tape.leaf(store, w0);
                    let b0v = tape.leaf(store, b0);
                    let t_hat = tape.matmul(t_rows, w0v);
                    let t_hat = tape.add_row_vec(t_hat, b0v);
                    if self.cfg.align == AlignMode::NoItems {
                        t_hat
                    } else {
                        let tn = tape.l2_normalize_rows(t_hat, 1e-12);
                        let vn = tape.l2_normalize_rows(v_rows, 1e-12);
                        tape.add(tn, vn)
                    }
                }
                AlignMode::None => unreachable!(),
            };
            let (anchors, z) = if self.cfg.use_nlt {
                (self.nlt_forward(tape, k, anchors), self.nlt_forward(tape, k, z))
            } else {
                (anchors, z)
            };
            // Relatedness weights.
            let mut aw = Tensor::zeros(items.len(), 1);
            for (i, &j) in items.iter().enumerate() {
                aw.set(i, 0, state.m.get(j as usize, k));
            }
            let mut tw = Tensor::zeros(targets.len(), 1);
            for (i, &j) in targets.iter().enumerate() {
                tw.set(i, 0, state.m.get(j as usize, k));
            }
            let l_k = masked_info_nce(tape, anchors, z, &mask, &aw, &tw, self.cfg.tau);
            total = Some(match total {
                Some(t) => tape.add(t, l_k),
                None => l_k,
            });
        }
        total.map(|t| tape.scale(t, 1.0 / self.cfg.k_intents as f32))
    }

    /// Independence regularizer over cluster centers: mean squared cosine of
    /// distinct center pairs (§V-D, following KGIN's intent independence).
    fn independence_loss(&self, tape: &mut Tape) -> Option<Var> {
        if self.cfg.k_intents < 2 || self.cfg.independence_weight == 0.0 {
            return None;
        }
        let c = tape.leaf(self.backbone.store(), self.centers);
        let cn = tape.l2_normalize_rows(c, 1e-12);
        let gram = tape.matmul_nt(cn, cn);
        let sq = tape.mul(gram, gram);
        let total = tape.sum_all(sq);
        let p = self.cfg.k_intents as f32;
        let off = tape.add_scalar(total, -p);
        Some(tape.scale(off, 1.0 / (p * (p - 1.0))))
    }

    /// One full training step of Eq. 18.
    fn step_full(&mut self, rng: &mut StdRng) -> f32 {
        let items = self.next_item_batch(rng);
        let ui = self.ui_sampler.sample(self.batch_size, rng);
        let vt = self.vt_sampler.sample(self.batch_size, rng);
        let mut tape = Tape::new();
        let sp_fwd = imcat_obs::span("phase.forward");
        let (u_all, v_all) = self.backbone.embed_all(&mut tape);
        let mut loss = self.ranking_losses(&mut tape, u_all, v_all, &ui, &vt);
        if self.cfg.beta > 0.0 {
            if let Some(l_ca) = self.alignment_loss(&mut tape, u_all, v_all, &items, rng) {
                let l_ca = tape.scale(l_ca, self.cfg.beta);
                self.terms.ca += tape.value(l_ca).item() as f64;
                loss = tape.add(loss, l_ca);
            }
        }
        if self.cfg.gamma > 0.0 && self.cfg.clustering == ClusteringMode::EndToEnd {
            let store = self.backbone.store();
            let q_plain = soft_assignment_tensor(
                store.value(self.tag_emb),
                store.value(self.centers),
                self.cfg.eta,
            );
            let target = target_distribution(&q_plain);
            let tv = tape.leaf(store, self.tag_emb);
            let cv = tape.leaf(store, self.centers);
            let q = soft_assignment(&mut tape, tv, cv, self.cfg.eta);
            let l_kl = kl_loss(&mut tape, q, &target);
            let l_kl = tape.scale(l_kl, self.cfg.gamma);
            self.terms.kl += tape.value(l_kl).item() as f64;
            loss = tape.add(loss, l_kl);
        }
        if let Some(ind) = self.independence_loss(&mut tape) {
            let ind = tape.scale(ind, self.cfg.independence_weight);
            self.terms.independence += tape.value(ind).item() as f64;
            loss = tape.add(loss, ind);
        }
        let value = tape.value(loss).item();
        drop(sp_fwd);
        tape.backward(loss, self.backbone.store_mut());
        self.backbone.opt_step();
        self.steps_since_refresh += 1;
        if self.steps_since_refresh >= self.cfg.refresh_every {
            self.refresh_clusters();
        }
        value
    }
}

impl<B: Backbone> RecModel for Imcat<B> {
    fn name(&self) -> String {
        let backbone_name = self.backbone.name();
        let prefix = match backbone_name.as_str() {
            "BPRMF" => "B",
            "NeuMF" => "N",
            "LightGCN" => "L",
            other => other,
        };
        format!("{prefix}-IMCAT")
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        self.terms = TermSums::default();
        let batches = self.ui_sampler.batches_per_epoch(self.batch_size);
        let mut total = 0.0;
        if self.pretraining() {
            for _ in 0..batches {
                total += self.step_pretrain(rng);
            }
        } else {
            if self.state.is_none() {
                self.init_clusters(rng);
            }
            for _ in 0..batches {
                total += self.step_full(rng);
            }
        }
        let epoch = self.epoch;
        self.epoch += 1;
        if imcat_obs::enabled() {
            let n = batches as f64;
            let t = self.terms;
            imcat_obs::gauge_set("loss.uv", t.uv / n);
            imcat_obs::gauge_set("loss.vt", t.vt / n);
            imcat_obs::gauge_set("loss.ca", t.ca / n);
            imcat_obs::gauge_set("loss.kl", t.kl / n);
            imcat_obs::gauge_set("loss.independence", t.independence / n);
            imcat_obs::emit(
                "loss_terms",
                vec![
                    ("epoch", imcat_obs::Json::Num(epoch as f64)),
                    ("model", imcat_obs::Json::Str(self.name())),
                    ("uv", imcat_obs::Json::Num(t.uv / n)),
                    ("vt", imcat_obs::Json::Num(t.vt / n)),
                    ("ca", imcat_obs::Json::Num(t.ca / n)),
                    ("kl", imcat_obs::Json::Num(t.kl / n)),
                    ("independence", imcat_obs::Json::Num(t.independence / n)),
                    ("total", imcat_obs::Json::Num(t.total() / n)),
                ],
            );
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        self.backbone.export_embeddings()
    }

    fn score_users(&self, users: &[u32]) -> Tensor {
        self.backbone.score_users(users)
    }

    fn num_params(&self) -> usize {
        self.backbone.num_params()
    }

    /// Serializes the full mutable training state: every parameter plus the
    /// Adam state (via the backbone's store), the epoch / refresh counters,
    /// the current hard cluster assignment, and the pending item-batch queue.
    /// The cluster-derived structures (aggregators, relatedness matrix, ISA
    /// sets) are rebuilt on load from the saved assignment — recomputing the
    /// assignment itself from the restored embeddings would *not* be
    /// equivalent, because refreshes happen mid-epoch against older
    /// embeddings.
    fn save_state(&self) -> Option<Vec<u8>> {
        let mut enc = imcat_ckpt::Encoder::new();
        enc.put_u64(self.epoch as u64);
        enc.put_u64(self.steps_since_refresh as u64);
        enc.put_u64(self.refresh_count);
        enc.put_bytes(&imcat_ckpt::encode_backbone_state(
            self.backbone.store(),
            self.backbone.optimizer(),
        ));
        match &self.state {
            Some(s) => {
                enc.put_u32(1);
                let assignment: Vec<u64> = s.assignment.iter().map(|&a| a as u64).collect();
                enc.put_u64s(&assignment);
            }
            None => enc.put_u32(0),
        }
        enc.put_u32(self.pending_item_batches.len() as u32);
        for batch in &self.pending_item_batches {
            enc.put_u32s(batch);
        }
        Some(enc.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let invalid = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let mut dec = imcat_ckpt::Decoder::new(bytes);
        let epoch = dec.u64()? as usize;
        let steps_since_refresh = dec.u64()? as usize;
        let refresh_count = dec.u64()?;
        let backbone_bytes = dec.bytes()?;
        let assignment = if dec.u32()? == 1 {
            Some(dec.u64s()?.into_iter().map(|a| a as usize).collect::<Vec<_>>())
        } else {
            None
        };
        let n_batches = dec.u32()? as usize;
        let mut pending = Vec::with_capacity(n_batches);
        for _ in 0..n_batches {
            pending.push(dec.u32s()?);
        }
        dec.finish()?;
        // Validate everything against this model's configuration before any
        // mutation, so a mismatched checkpoint leaves the model untouched.
        if let Some(a) = &assignment {
            let n_tags = self.backbone.store().value(self.tag_emb).shape().0;
            if a.len() != n_tags {
                return Err(invalid(format!(
                    "checkpoint assignment covers {} tags, model has {n_tags}",
                    a.len()
                )));
            }
            if let Some(&k) = a.iter().find(|&&k| k >= self.cfg.k_intents) {
                return Err(invalid(format!(
                    "checkpoint assignment uses intent {k}, model has {}",
                    self.cfg.k_intents
                )));
            }
        }
        let (store, adam) = self.backbone.store_and_optimizer_mut();
        imcat_ckpt::restore_backbone_state(store, adam, backbone_bytes)?;
        self.epoch = epoch;
        self.refresh_count = refresh_count;
        match assignment {
            Some(a) => self.rebuild_derived(a),
            None => self.state = None,
        }
        // After rebuild_derived, which does not touch the step counter.
        self.steps_since_refresh = steps_since_refresh;
        self.pending_item_batches = pending;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_models::test_util::{tiny_split, training_improves_recall};
    use imcat_models::{Bprmf, LightGcn, Neumf, TrainConfig};
    use rand::SeedableRng;

    fn quick_cfg() -> ImcatConfig {
        ImcatConfig { pretrain_epochs: 3, ..Default::default() }
    }

    #[test]
    fn pretraining_phase_transitions() {
        let data = tiny_split(201);
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let mut model = Imcat::new(bb, &data, quick_cfg(), &mut rng);
        assert!(model.pretraining());
        assert!(model.cluster_assignment().is_none());
        for _ in 0..4 {
            model.train_epoch(&mut rng);
        }
        assert!(!model.pretraining());
        assert!(model.cluster_assignment().is_some());
        let a = model.cluster_assignment().unwrap();
        assert_eq!(a.len(), data.n_tags());
        assert!(a.iter().all(|&k| k < 4));
    }

    #[test]
    fn b_imcat_improves_over_training() {
        let data = tiny_split(232);
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let model = Imcat::new(bb, &data, quick_cfg(), &mut rng);
        training_improves_recall(model, &data, 40);
    }

    #[test]
    fn n_imcat_improves_over_training() {
        let data = tiny_split(203);
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Neumf::new(&data, TrainConfig::default(), &mut rng);
        let model = Imcat::new(bb, &data, quick_cfg(), &mut rng);
        training_improves_recall(model, &data, 40);
    }

    #[test]
    fn l_imcat_improves_over_training() {
        let data = tiny_split(204);
        let mut rng = StdRng::seed_from_u64(0);
        let bb = LightGcn::new(&data, TrainConfig::default(), &mut rng);
        let model = Imcat::new(bb, &data, quick_cfg(), &mut rng);
        training_improves_recall(model, &data, 30);
    }

    #[test]
    fn names_follow_paper_convention() {
        let data = tiny_split(205);
        let mut rng = StdRng::seed_from_u64(0);
        let b = Imcat::new(
            Bprmf::new(&data, TrainConfig::default(), &mut rng),
            &data,
            quick_cfg(),
            &mut rng,
        );
        assert_eq!(b.name(), "B-IMCAT");
        let n = Imcat::new(
            Neumf::new(&data, TrainConfig::default(), &mut rng),
            &data,
            quick_cfg(),
            &mut rng,
        );
        assert_eq!(n.name(), "N-IMCAT");
        let l = Imcat::new(
            LightGcn::new(&data, TrainConfig::default(), &mut rng),
            &data,
            quick_cfg(),
            &mut rng,
        );
        assert_eq!(l.name(), "L-IMCAT");
    }

    #[test]
    fn all_ablations_run_a_full_epoch() {
        let data = tiny_split(206);
        for cfg in [
            quick_cfg().without_uit(),
            quick_cfg().without_ut(),
            quick_cfg().without_ui(),
            quick_cfg().without_nlt(),
            quick_cfg().without_isa(),
        ] {
            let mut rng = StdRng::seed_from_u64(0);
            let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
            let mut model =
                Imcat::new(bb, &data, ImcatConfig { pretrain_epochs: 1, ..cfg }, &mut rng);
            for _ in 0..3 {
                let stats = model.train_epoch(&mut rng);
                assert!(stats.loss.is_finite(), "ablation produced NaN loss");
            }
        }
    }

    #[test]
    fn relatedness_matches_item_count() {
        let data = tiny_split(207);
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let mut model =
            Imcat::new(bb, &data, ImcatConfig { pretrain_epochs: 0, ..quick_cfg() }, &mut rng);
        model.train_epoch(&mut rng);
        let m = model.relatedness().unwrap();
        assert_eq!(m.shape(), (data.n_items(), 4));
        for j in 0..data.n_items() {
            let s: f32 = m.row(j).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
