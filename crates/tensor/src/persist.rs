//! Model persistence: a small, versioned, little-endian binary format for
//! parameter stores, so trained models can be checkpointed and reloaded
//! without pulling in a serialization framework for multi-megabyte float
//! buffers.
//!
//! Layout: magic `IMCT`, format version (u32), parameter count (u32), then
//! per parameter: name length (u32), UTF-8 name, rows (u32), cols (u32),
//! row-major `f32` data.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::store::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"IMCT";
const VERSION: u32 = 1;

/// Writes every parameter of `store` to `w`.
pub fn save_params(store: &ParamStore, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, p) in store.iter() {
        let name = p.name().as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let (rows, cols) = p.value().shape();
        w.write_all(&(rows as u32).to_le_bytes())?;
        w.write_all(&(cols as u32).to_le_bytes())?;
        for &x in p.value().as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a checkpoint produced by [`save_params`] into a fresh store.
///
/// Parameter order and names are preserved, so `ParamId`s handed out by an
/// identically-constructed model remain valid.
pub fn load_params(mut r: impl Read) -> io::Result<ParamStore> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an IMCT checkpoint"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 20 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized name"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 name"))?;
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        let elems = rows
            .checked_mul(cols)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shape overflow"))?;
        let mut data = Vec::with_capacity(elems);
        let mut buf = [0u8; 4];
        for _ in 0..elems {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        store.add(name, Tensor::from_vec(rows, cols, data));
    }
    Ok(store)
}

/// Saves to a file path.
pub fn save_params_to(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    save_params(store, io::BufWriter::new(f))
}

/// Loads from a file path.
pub fn load_params_from(path: impl AsRef<Path>) -> io::Result<ParamStore> {
    let f = std::fs::File::open(path)?;
    load_params(io::BufReader::new(f))
}

/// Copies values from `src` into `dst` by matching parameter names; shapes
/// must agree. Returns the number of parameters restored. Parameters of
/// `dst` missing from `src` are left untouched.
pub fn restore_into(dst: &mut ParamStore, src: &ParamStore) -> Result<usize, String> {
    let mut restored = 0;
    let ids: Vec<_> = dst.iter().map(|(id, p)| (id, p.name().to_string())).collect();
    for (id, name) in ids {
        if let Some((_, sp)) = src.iter().find(|(_, p)| p.name() == name) {
            if sp.value().shape() != dst.value(id).shape() {
                return Err(format!(
                    "shape mismatch for '{name}': {:?} vs {:?}",
                    sp.value().shape(),
                    dst.value(id).shape()
                ));
            }
            *dst.value_mut(id) = sp.value().clone();
            restored += 1;
        }
    }
    Ok(restored)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("alpha", Tensor::from_vec(2, 3, vec![1., -2., 3.5, 0., 7.25, -0.125]));
        s.add("beta", Tensor::scalar(42.0));
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        let (_, p0) = loaded.iter().next().unwrap();
        assert_eq!(p0.name(), "alpha");
        assert_eq!(p0.value(), store.iter().next().unwrap().1.value());
        let (_, p1) = loaded.iter().nth(1).unwrap();
        assert_eq!(p1.value().item(), 42.0);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_params(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_data() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_params(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        buf[4] = 99;
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store();
        let path = std::env::temp_dir().join(format!("imct_{}.bin", std::process::id()));
        save_params_to(&store, &path).unwrap();
        let loaded = load_params_from(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_into_matches_by_name() {
        let src = sample_store();
        let mut dst = ParamStore::new();
        dst.add("beta", Tensor::scalar(0.0));
        dst.add("gamma", Tensor::scalar(-1.0));
        let n = restore_into(&mut dst, &src).unwrap();
        assert_eq!(n, 1);
        assert_eq!(dst.value(dst.iter().next().unwrap().0).item(), 42.0);
        // gamma untouched
        assert_eq!(dst.value(dst.iter().nth(1).unwrap().0).item(), -1.0);
    }

    #[test]
    fn restore_into_rejects_shape_mismatch() {
        let src = sample_store();
        let mut dst = ParamStore::new();
        dst.add("alpha", Tensor::zeros(1, 1));
        assert!(restore_into(&mut dst, &src).is_err());
    }
}
