//! # imcat-data
//!
//! Data substrate for the IMCAT reproduction: the tag-enhanced dataset model
//! (`Y` user–item, `Y'` item–tag from §III-A of the paper), per-user 7:1:2
//! splitting (§V-B), BPR triplet and contrastive item-batch samplers (§V-D),
//! loaders for real HetRec-style dumps with the paper's 10-core/5-item
//! filtering (§V-A), and a latent-intent synthetic generator calibrated to
//! the shapes of Table I (see DESIGN.md for the substitution argument).

#![warn(missing_docs)]

mod dataset;
mod load;
mod sample;
mod synth;

pub use dataset::{Dataset, DatasetStats, SplitDataset};
pub use load::{build_dataset, load_dataset, parse_pairs, save_dataset, FilterConfig, RawData};
pub use sample::{BprBatch, BprSampler, ItemBatcher};
pub use synth::{generate, GroundTruth, SynthConfig, SynthData};
