//! Streaming ingestion benchmark: live recommend traffic interleaved with
//! cold-user/cold-item registration, fold-in, and a mid-stream background
//! index rebuild that must swap generations without failing a request.
//!
//! The binary trains BPR-MF on the scaled synthetic catalog and loads the
//! exported artifact into a mutable serving engine (ANN on). It then picks
//! the warmest `IMCAT_INGEST_USERS` users as donors, registers one cold
//! user per donor, and replays a Zipf recommend stream while ingesting the
//! first half of each donor's history as the cold user's live interactions,
//! in `IMCAT_INGEST_BATCH`-sized slices with periodic fold ticks. At
//! `IMCAT_REBUILD_AT` of the stream it spawns the background log-replay
//! rebuild and keeps serving until the worker finishes, then commits the
//! new generation and continues — the acceptance criterion is **zero**
//! failed requests across the swap.
//!
//! The report (`target/experiments/stream_bench.json`) carries the serving
//! QPS under ingest load, ingest throughput, rebuild wall time, requests
//! answered while the rebuild ran, and the cold-user quality signal: mean
//! recall@10 of the folded cold users against their donors' held-out
//! second half (must beat zero — the fold-in lands in the donor's
//! neighborhood, not at a random point). Consumed by the `stream-smoke`
//! CI job.
//!
//! Environment knobs:
//!
//! * `IMCAT_STREAM_REQUESTS` — recommend-request count (default 2000)
//! * `IMCAT_INGEST_USERS`    — cold users registered live (default 32)
//! * `IMCAT_INGEST_BATCH`    — interactions per ingest slice (default 8)
//! * `IMCAT_REBUILD_AT`      — stream fraction triggering the rebuild
//!   (default 0.5)
//!
//! Usage: `cargo run --release -p imcat-bench --bin stream_bench`

use std::path::PathBuf;
use std::time::Instant;

use imcat_bench::ModelKind;
use imcat_bench::{logln, obs_finish, obs_init, write_json, Env, ExpLog};
use imcat_core::config::knobs::{knob_f64, knob_str, knob_usize};
use imcat_core::train;
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_serve::{AnnConfig, AnnKind, Engine, Interaction, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 17;
const K: usize = 10;

/// Normalized Zipf CDF over `n` ranks (same stream shape as serve_bench).
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for r in 0..n {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for v in &mut cdf {
        *v /= acc;
    }
    cdf
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> u32 {
    let x: f64 = rng.gen();
    cdf.partition_point(|&p| p < x).min(cdf.len() - 1) as u32
}

struct Row {
    ann_kind: String,
    requests: usize,
    failed_requests: usize,
    qps: f64,
    ingest_events: usize,
    ingest_per_sec: f64,
    cold_users: usize,
    cold_items: usize,
    cold_recall_at10: f64,
    cold_hit_fraction: f64,
    rebuild_seconds: f64,
    requests_during_rebuild: usize,
    generation: u64,
    fold_ticks: usize,
}

imcat_obs::impl_to_json!(Row {
    ann_kind,
    requests,
    failed_requests,
    qps,
    ingest_events,
    ingest_per_sec,
    cold_users,
    cold_items,
    cold_recall_at10,
    cold_hit_fraction,
    rebuild_seconds,
    requests_during_rebuild,
    generation,
    fold_ticks
});

fn main() {
    obs_init(true);
    let mut log = ExpLog::new("stream_bench");
    let env = Env::from_env();

    let n_requests = knob_usize("IMCAT_STREAM_REQUESTS", 2000);
    let n_cold = knob_usize("IMCAT_INGEST_USERS", 32);
    let slice = knob_usize("IMCAT_INGEST_BATCH", 8).max(1);
    let rebuild_at = knob_f64("IMCAT_REBUILD_AT", 0.5).clamp(0.0, 1.0);

    let data: SplitDataset = {
        let cfg = SynthConfig::citeulike().scaled(env.scale);
        let d = generate(&cfg, 11);
        let mut rng = StdRng::seed_from_u64(12);
        d.dataset.split((0.7, 0.1, 0.2), &mut rng)
    };
    logln!(
        log,
        "stream_bench: {} users x {} items, {} requests, {} cold users, slice {}, rebuild at {:.0}%",
        data.n_users(),
        data.n_items(),
        n_requests,
        n_cold,
        slice,
        rebuild_at * 100.0
    );

    // Train and export the artifact through the trainer's best-epoch hook.
    let art_dir = PathBuf::from("target/experiments/stream_artifacts");
    std::fs::create_dir_all(&art_dir).expect("cannot create artifact dir");
    let artifact_path = art_dir.join("bprmf.artifact");
    let kind = ModelKind::Bprmf;
    let mut model = kind.build(&data, &env.train_config(), &env.imcat_config(), SEED);
    let base = env.trainer_config(SEED);
    let tcfg = imcat_core::TrainerConfig {
        artifact_path: Some(artifact_path.clone()),
        eval_every: base.eval_every.min(base.max_epochs).max(1),
        ..base
    };
    let report = train(model.as_mut(), &data, &tcfg);
    logln!(
        log,
        "bprmf: trained {} epochs, best val R@20 {:.4}",
        report.epochs_run,
        report.best_val_recall
    );

    // IMCAT_ANN_KIND selects the live index backend (ivf, brute, or hnsw)
    // so the same streaming run — live inserts, mid-traffic rebuild swap —
    // exercises whichever retrieval path is under test.
    let ann_kind = knob_str("IMCAT_ANN_KIND")
        .map(|v| AnnKind::parse(&v).unwrap_or_else(|| panic!("unknown IMCAT_ANN_KIND: {v}")))
        .unwrap_or(AnnKind::Ivf);
    logln!(log, "ann backend: {}", ann_kind.name());
    let cfg = ServeConfig {
        cache_capacity: 256,
        ann: Some(AnnConfig { kind: ann_kind, ..AnnConfig::default() }),
        ..Default::default()
    };
    let mut engine = Engine::load(&artifact_path, cfg).expect("artifact must load");
    let n_warm = engine.n_users();

    // Donors: the warmest users. Each cold user replays the first half of
    // their donor's history live; the second half is the recall holdout.
    let mut by_mass: Vec<usize> = (0..n_warm).collect();
    by_mass.sort_unstable_by_key(|&u| std::cmp::Reverse(engine.artifact().masks[u].len()));
    let donors: Vec<usize> = by_mass
        .into_iter()
        .take(n_cold)
        .filter(|&u| engine.artifact().masks[u].len() >= 4)
        .collect();
    let mut scripts: Vec<(u32, Vec<u32>, Vec<u32>)> = Vec::new(); // (cold id, seen, holdout)
    for &donor in &donors {
        let history = engine.artifact().masks[donor].clone();
        let (seen, holdout) = history.split_at(history.len() / 2);
        let cold = engine.register_user();
        scripts.push((cold, seen.to_vec(), holdout.to_vec()));
    }
    // A handful of cold items, fed interactions from warm users so the next
    // fold tick gives them nonzero rows and inserts them into the index.
    let n_cold_items = (n_cold / 4).max(1);
    let cold_items: Vec<u32> = (0..n_cold_items).map(|_| engine.register_item()).collect();

    // Flatten the cold-user scripts into one arrival-ordered ingest tape,
    // round-robin across users, plus warm evidence for each cold item.
    let mut tape: Vec<Interaction> = Vec::new();
    let longest = scripts.iter().map(|(_, seen, _)| seen.len()).max().unwrap_or(0);
    for i in 0..longest {
        for (cold, seen, _) in &scripts {
            if let Some(&item) = seen.get(i) {
                tape.push(Interaction { user: *cold, item });
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5a5a);
    for &item in &cold_items {
        for _ in 0..4 {
            tape.push(Interaction { user: rng.gen_range(0..n_warm as u32), item });
        }
    }

    // Interleave: spread the whole tape over the first 80% of the stream so
    // the rebuild and the tail of the run see folded cold users.
    let n_slices = tape.len().div_ceil(slice);
    let ingest_window = n_requests * 4 / 5;
    let ingest_every = (ingest_window / n_slices.max(1)).max(1);
    let cdf = zipf_cdf(n_warm, 1.1);
    let rebuild_step = ((n_requests as f64) * rebuild_at) as usize;

    let mut served = 0usize;
    let mut failed = 0usize;
    let mut ingested = 0usize;
    let mut fold_ticks = 0usize;
    let mut during_rebuild = 0usize;
    let mut rebuild_wall = 0.0f64;
    let mut task = None;
    let mut rebuild_t0 = None;
    let mut next_slice = 0usize;
    let t0 = Instant::now();
    for step in 0..n_requests {
        if step % ingest_every == 0 && next_slice < n_slices {
            let lo = next_slice * slice;
            let hi = (lo + slice).min(tape.len());
            for &x in &tape[lo..hi] {
                engine.ingest(x).expect("tape interactions are in range");
                ingested += 1;
            }
            next_slice += 1;
            // Fold every fourth slice so cold entities become servable
            // while the stream is still running.
            if next_slice % 4 == 0 || next_slice == n_slices {
                engine.fold_pending();
                fold_ticks += 1;
            }
        }
        if step == rebuild_step {
            task = Some(engine.spawn_rebuild(None).expect("spawn rebuild"));
            rebuild_t0 = Some(Instant::now());
        }
        if let Some(t) = &task {
            during_rebuild += 1;
            if t.is_finished() {
                rebuild_wall = rebuild_t0.take().expect("rebuild timer").elapsed().as_secs_f64();
                engine.commit_rebuild(task.take().expect("task present")).expect("commit rebuild");
            }
        }
        let user = sample_zipf(&cdf, &mut rng);
        served += 1;
        if engine.recommend(user, K).is_err() {
            failed += 1;
        }
    }
    // A short stream can end before the worker does: keep serving until the
    // swap lands so the zero-failures claim always covers the full rebuild.
    if let Some(t) = task.take() {
        while !t.is_finished() {
            let user = sample_zipf(&cdf, &mut rng);
            served += 1;
            if engine.recommend(user, K).is_err() {
                failed += 1;
            }
            during_rebuild += 1;
        }
        rebuild_wall = rebuild_t0.take().expect("rebuild timer").elapsed().as_secs_f64();
        engine.commit_rebuild(t).expect("commit rebuild");
    }
    let wall = t0.elapsed().as_secs_f64();
    engine.fold_pending();

    // Cold-user quality: recall@10 against the donor's held-out half.
    let mut recall_sum = 0.0f64;
    let mut with_hit = 0usize;
    for (cold, _, holdout) in &scripts {
        let recs = engine.recommend(*cold, K).expect("cold user must be servable");
        let hits = recs.iter().filter(|r| holdout.contains(&r.item)).count();
        recall_sum += hits as f64 / holdout.len().min(K).max(1) as f64;
        with_hit += (hits > 0) as usize;
    }
    let cold_recall = recall_sum / scripts.len().max(1) as f64;
    let hit_fraction = with_hit as f64 / scripts.len().max(1) as f64;

    let row = Row {
        ann_kind: ann_kind.name().into(),
        requests: served,
        failed_requests: failed,
        qps: served as f64 / wall.max(1e-9),
        ingest_events: ingested,
        ingest_per_sec: ingested as f64 / wall.max(1e-9),
        cold_users: scripts.len(),
        cold_items: cold_items.len(),
        cold_recall_at10: cold_recall,
        cold_hit_fraction: hit_fraction,
        rebuild_seconds: rebuild_wall,
        requests_during_rebuild: during_rebuild,
        generation: engine.generation(),
        fold_ticks,
    };
    logln!(
        log,
        "served {} requests at {:.0} qps ({} failed), {} ingests ({:.0}/s), {} fold ticks",
        row.requests,
        row.qps,
        row.failed_requests,
        row.ingest_events,
        row.ingest_per_sec,
        row.fold_ticks
    );
    logln!(
        log,
        "rebuild: {:.3}s wall, {} requests served during it, generation now {}",
        row.rebuild_seconds,
        row.requests_during_rebuild,
        row.generation
    );
    logln!(
        log,
        "cold users: {} folded, recall@10 {:.4}, {:.0}% with >=1 holdout hit",
        row.cold_users,
        row.cold_recall_at10,
        row.cold_hit_fraction * 100.0
    );

    if imcat_obs::enabled() {
        use imcat_obs::Json;
        imcat_obs::emit(
            "stream_bench",
            vec![
                ("ann_kind", Json::Str(row.ann_kind.clone())),
                ("qps", Json::Num(row.qps)),
                ("ingest_per_sec", Json::Num(row.ingest_per_sec)),
                ("failed_requests", Json::Num(row.failed_requests as f64)),
                ("cold_recall_at10", Json::Num(row.cold_recall_at10)),
                ("rebuild_seconds", Json::Num(row.rebuild_seconds)),
                ("requests_during_rebuild", Json::Num(row.requests_during_rebuild as f64)),
                ("generation", Json::Num(row.generation as f64)),
            ],
        );
        imcat_obs::gauge_set("stream.cold_recall_at10", row.cold_recall_at10);
        imcat_obs::gauge_set("stream.failed_requests", row.failed_requests as f64);
        imcat_obs::gauge_set("stream.rebuild_seconds", row.rebuild_seconds);
    }

    let path = write_json("stream_bench", &row);
    logln!(log, "report written to {}", path.display());
    obs_finish();
}
