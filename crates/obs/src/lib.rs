//! # imcat-obs — telemetry for the IMCAT training stack
//!
//! A zero-dependency observability layer: counters, gauges, fixed-bucket
//! timing histograms, scoped span timers, structured events, a JSONL sink,
//! and an end-of-run summary table.
//!
//! ## Design
//!
//! * **Thread-local registry.** The training stack is single-threaded per
//!   run (the autodiff tape is `Rc`-based); a thread-local registry makes
//!   recording a plain pointer bump with no atomics, and keeps parallel test
//!   threads from contaminating each other's measurements.
//! * **Off by default.** Every recording call first checks one thread-local
//!   flag; when disabled the instrumented fast paths stay branch-predictable
//!   and allocation-free. Enable explicitly with [`set_enabled`] or from the
//!   environment with [`init_from_env`] (`IMCAT_OBS=1` or `IMCAT_OBS_OUT`
//!   set).
//! * **Static keys.** Metric names are `&'static str` so the hot path never
//!   allocates; dynamic payloads belong in [`emit`]ted events.
//!
//! ## Event schema (JSONL)
//!
//! [`write_jsonl`] writes one JSON object per line:
//!
//! * events: `{"t": seconds_since_process_start, "kind": "...", ...fields}`
//! * counters: `{"kind": "counter", "name": "...", "value": n}`
//! * gauges: `{"kind": "gauge", "name": "...", "value": x}`
//! * histograms: `{"kind": "hist", "name": "...", "count": n, "sum": s,
//!   "mean": m, "min": lo, "max": hi, "p50": q, "p99": q}`

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

mod json;

pub use json::{Json, ToJson};

/// Histogram bucket upper bounds in seconds: `1µs · 2^i`. Values above the
/// last bound land in an overflow bucket.
pub const BUCKET_BOUNDS: [f64; 26] = {
    let mut b = [0.0; 26];
    let mut i = 0;
    while i < 26 {
        b[i] = 1.0e-6 * (1u64 << i) as f64;
        i += 1;
    }
    b
};

/// Fixed-bucket histogram of seconds.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// Bucket counts; `buckets[i]` counts values `<= BUCKET_BOUNDS[i]`, the
    /// final slot is overflow.
    pub buckets: [u64; BUCKET_BOUNDS.len() + 1],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, v: f64) {
        let idx = BUCKET_BOUNDS.iter().position(|&b| v <= b).unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the bucket
    /// containing the `q`-quantile observation.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < BUCKET_BOUNDS.len() { BUCKET_BOUNDS[i] } else { self.max };
            }
        }
        self.max
    }
}

/// One structured event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Seconds since process start.
    pub t: f64,
    /// Event kind, e.g. `"epoch"` or `"loss_terms"`.
    pub kind: String,
    /// Event payload.
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Renders the event as one JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("t".to_string(), Json::Num(self.t)),
            ("kind".to_string(), Json::Str(self.kind.clone())),
        ];
        fields.extend(self.fields.iter().cloned());
        Json::Obj(fields)
    }

    /// Parses an event from the JSON object written by [`Event::to_json`].
    pub fn from_json(v: &Json) -> Option<Event> {
        let t = v.get("t")?.as_f64()?;
        let kind = v.get("kind")?.as_str()?.to_string();
        let fields = match v {
            Json::Obj(fields) => {
                fields.iter().filter(|(k, _)| k != "t" && k != "kind").cloned().collect()
            }
            _ => return None,
        };
        Some(Event { t, kind, fields })
    }
}

#[derive(Default)]
struct Registry {
    enabled: bool,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Histogram>,
    events: Vec<Event>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

fn epoch_instant() -> Instant {
    use std::sync::OnceLock;
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Seconds since the first telemetry call of the process.
pub fn now_seconds() -> f64 {
    epoch_instant().elapsed().as_secs_f64()
}

/// Turns recording on or off for the current thread.
pub fn set_enabled(on: bool) {
    if on {
        // Anchor the event clock before the first measurement.
        let _ = epoch_instant();
    }
    REGISTRY.with(|r| r.borrow_mut().enabled = on);
}

/// Whether recording is on for the current thread.
#[inline]
pub fn enabled() -> bool {
    REGISTRY.with(|r| r.borrow().enabled)
}

/// Enables recording when `IMCAT_OBS` is truthy or `IMCAT_OBS_OUT` is set;
/// returns the resulting enabled state.
pub fn init_from_env() -> bool {
    let on =
        matches!(std::env::var("IMCAT_OBS").ok().as_deref(), Some("1") | Some("true") | Some("on"))
            || out_path().is_some();
    if on {
        set_enabled(true);
    }
    on
}

/// The JSONL sink path from `IMCAT_OBS_OUT`, if set.
pub fn out_path() -> Option<PathBuf> {
    std::env::var_os("IMCAT_OBS_OUT").map(PathBuf::from)
}

/// Clears all recorded metrics and events on this thread (the enabled flag
/// is preserved).
pub fn reset() {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.counters.clear();
        reg.gauges.clear();
        reg.hists.clear();
        reg.events.clear();
    });
}

/// Adds `v` to a named counter.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        if reg.enabled {
            *reg.counters.entry(name).or_insert(0) += v;
        }
    });
}

/// Sets a named gauge.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        if reg.enabled {
            reg.gauges.insert(name, v);
        }
    });
}

/// Records a duration (seconds) into a named histogram.
#[inline]
pub fn observe(name: &'static str, seconds: f64) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        if reg.enabled {
            reg.hists.entry(name).or_default().record(seconds);
        }
    });
}

/// Appends a structured event.
pub fn emit(kind: &str, fields: Vec<(&str, Json)>) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        if reg.enabled {
            let t = now_seconds();
            reg.events.push(Event {
                t,
                kind: kind.to_string(),
                fields: fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            });
        }
    });
}

/// Scoped timer: on drop, records elapsed seconds into the histogram named
/// at construction. Inert (and allocation-free) when recording is disabled.
pub struct Span {
    start: Option<(&'static str, Instant)>,
}

impl Span {
    /// Whether this span is live (recording was enabled at creation).
    #[inline]
    pub fn active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.start.take() {
            observe(name, t0.elapsed().as_secs_f64());
        }
    }
}

/// Opens a [`Span`] recording into histogram `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span { start: if enabled() { Some((name, Instant::now())) } else { None } }
}

/// Immutable copy of the registry state, used for deltas and reporting.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms by name.
    pub hists: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Total seconds recorded into a histogram (0 when absent).
    pub fn hist_sum(&self, name: &str) -> f64 {
        self.hist(name).map_or(0.0, |h| h.sum)
    }

    /// Number of recordings in a histogram (0 when absent).
    pub fn hist_count(&self, name: &str) -> u64 {
        self.hist(name).map_or(0, |h| h.count)
    }

    /// Sum of `hist_sum` over every histogram whose name starts with
    /// `prefix` (e.g. `"phase."`).
    pub fn prefixed_time(&self, prefix: &str) -> f64 {
        self.hists.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, h)| h.sum).sum()
    }
}

/// Snapshots the current thread's metrics.
pub fn snapshot() -> Snapshot {
    REGISTRY.with(|r| {
        let reg = r.borrow();
        Snapshot {
            counters: reg.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            gauges: reg.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            hists: reg.hists.iter().map(|(&k, h)| (k.to_string(), h.clone())).collect(),
        }
    })
}

/// Clones the buffered events.
pub fn events() -> Vec<Event> {
    REGISTRY.with(|r| r.borrow().events.clone())
}

fn sink_lines(snap: &Snapshot, events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().render());
        out.push('\n');
    }
    for (name, v) in &snap.counters {
        let line = Json::obj(vec![
            ("kind", Json::Str("counter".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(*v as f64)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        let line = Json::obj(vec![
            ("kind", Json::Str("gauge".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(*v)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, h) in &snap.hists {
        let line = Json::obj(vec![
            ("kind", Json::Str("hist".into())),
            ("name", Json::Str(name.clone())),
            ("count", Json::Num(h.count as f64)),
            ("sum", Json::Num(h.sum)),
            ("mean", Json::Num(h.mean())),
            ("min", Json::Num(if h.count == 0 { 0.0 } else { h.min })),
            ("max", Json::Num(if h.count == 0 { 0.0 } else { h.max })),
            ("p50", Json::Num(h.quantile(0.5))),
            ("p99", Json::Num(h.quantile(0.99))),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

/// Writes buffered events plus final counter/gauge/histogram summaries as
/// JSONL to `path`, creating parent directories as needed.
///
/// The write is atomic (temp file + fsync + rename), so a crash mid-write —
/// or a reader racing the writer — never observes a half-written sink: the
/// path holds either the previous complete file or the new one.
pub fn write_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(sink_lines(&snapshot(), &events()).as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Human-readable summary of every recorded metric.
pub fn summary() -> String {
    let snap = snapshot();
    let mut out = String::new();
    if !snap.hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "timer", "count", "total(s)", "mean(s)", "p50(s)", "p99(s)"
        );
        for (name, h) in &snap.hists {
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>12.6} {:>12.9} {:>12.9} {:>12.9}",
                name,
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "{:<28} {:>16}", "counter", "value");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name:<28} {v:>16}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "{:<28} {:>16}", "gauge", "value");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name:<28} {v:>16.6}");
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

/// End-of-run hook: when `IMCAT_OBS_OUT` is set, writes the JSONL sink there
/// and returns the path written.
pub fn finalize() -> Option<PathBuf> {
    let path = out_path()?;
    match write_jsonl(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("imcat-obs: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_clean<T>(f: impl FnOnce() -> T) -> T {
        set_enabled(true);
        reset();
        let out = f();
        reset();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_records_nothing() {
        set_enabled(false);
        reset();
        counter_add("x", 3);
        observe("h", 0.5);
        emit("e", vec![]);
        {
            let s = span("sp");
            assert!(!s.active());
        }
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(events().is_empty());
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::default();
        // Exactly on the first bound (1µs) -> bucket 0; just above -> bucket 1.
        h.record(1.0e-6);
        h.record(1.000001e-6 * 1.5);
        // Far beyond the last bound -> overflow bucket.
        h.record(1.0e9);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS.len()], 1);
        assert_eq!(h.count, 3);
        assert!((h.max - 1.0e9).abs() < 1.0);
        // Quantiles resolve to bucket upper bounds (max for overflow).
        assert_eq!(h.quantile(0.01), BUCKET_BOUNDS[0]);
        assert_eq!(h.quantile(1.0), h.max);
        // Bounds double each bucket.
        for i in 1..BUCKET_BOUNDS.len() {
            assert!((BUCKET_BOUNDS[i] / BUCKET_BOUNDS[i - 1] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn counters_aggregate_across_spans() {
        with_clean(|| {
            for _ in 0..4 {
                let _s = span("op.test.time");
                counter_add("op.test.flops", 10);
            }
            let snap = snapshot();
            assert_eq!(snap.counter("op.test.flops"), 40);
            assert_eq!(snap.hist_count("op.test.time"), 4);
            assert!(snap.hist_sum("op.test.time") >= 0.0);
            assert_eq!(snap.prefixed_time("op."), snap.hist_sum("op.test.time"));
        });
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        with_clean(|| {
            emit("epoch", vec![("epoch", Json::Num(1.0)), ("loss", Json::Num(0.25))]);
            emit("eval", vec![("recall", Json::Num(0.125))]);
            counter_add("op.matmul.count", 2);
            observe("phase.forward", 0.5);

            let original = events();
            let text = sink_lines(&snapshot(), &original);
            let mut parsed_events = Vec::new();
            let mut saw_counter = false;
            let mut saw_hist = false;
            for line in text.lines() {
                let v = Json::parse(line).expect("each line parses");
                match v.get("kind").and_then(Json::as_str) {
                    Some("counter") => {
                        saw_counter = true;
                        assert_eq!(v.get("name").unwrap().as_str(), Some("op.matmul.count"));
                        assert_eq!(v.get("value").unwrap().as_f64(), Some(2.0));
                    }
                    Some("hist") => {
                        saw_hist = true;
                        assert_eq!(v.get("sum").unwrap().as_f64(), Some(0.5));
                    }
                    _ => parsed_events.push(Event::from_json(&v).expect("event parses")),
                }
            }
            assert!(saw_counter && saw_hist);
            assert_eq!(parsed_events.len(), original.len());
            for (a, b) in original.iter().zip(&parsed_events) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.fields, b.fields);
                assert!((a.t - b.t).abs() < 1e-9);
            }
        });
    }

    #[test]
    fn summary_lists_recorded_names() {
        with_clean(|| {
            counter_add("c1", 7);
            gauge_set("g1", 1.5);
            observe("t1", 0.001);
            let s = summary();
            for needle in ["c1", "g1", "t1"] {
                assert!(s.contains(needle), "summary missing {needle}:\n{s}");
            }
        });
    }
}
