//! Experiment runner: datasets, training, measurement, JSON reporting, and
//! telemetry wiring (per-run phase breakdowns via `imcat-obs`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use imcat_ckpt::{Checkpoint, Decoder, Encoder};
use imcat_core::{ImcatConfig, TrainerConfig};
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_eval::{evaluate_per_user, EvalSpec, PerUserMetrics};
use imcat_models::TrainConfig;
use imcat_obs::{Json, ToJson};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::registry::ModelKind;

/// The disjoint training-phase spans recorded by the instrumented stack.
/// `phase.eval` is excluded from `train_seconds` by the trainer, so the
/// breakdown reports it separately.
const TRAIN_PHASES: [&str; 5] =
    ["phase.sampling", "phase.forward", "phase.backward", "phase.optimizer", "phase.refresh"];

/// Enables telemetry for a benchmark binary. Honors `IMCAT_OBS` /
/// `IMCAT_OBS_OUT`; pass `force` to switch it on regardless (the efficiency
/// experiments always want the phase breakdown).
pub fn obs_init(force: bool) {
    imcat_obs::init_from_env();
    if force {
        imcat_obs::set_enabled(true);
    }
}

/// Prints the telemetry summary table and writes the JSONL sink if
/// `IMCAT_OBS_OUT` is set. No-op when telemetry is disabled.
pub fn obs_finish() {
    if !imcat_obs::enabled() {
        return;
    }
    // Fold the pool workers' atomic busy-time counters into the registry
    // before the summary is rendered.
    imcat_par::flush_obs();
    println!("{}", imcat_obs::summary());
    if let Some(path) = imcat_obs::finalize() {
        println!("telemetry written to {}", path.display());
    }
}

/// Tees experiment output to stdout *and* `target/experiments/<name>.log`, so
/// binaries leave their logs under `target/` instead of relying on shell
/// redirection into the repository root (see the `logln!` macro).
pub struct ExpLog {
    file: Option<std::fs::File>,
    path: PathBuf,
}

impl ExpLog {
    /// Opens (truncating) `target/experiments/<name>.log`. Failure to create
    /// the file degrades to stdout-only logging.
    pub fn new(name: &str) -> Self {
        let dir = PathBuf::from("target/experiments");
        let path = dir.join(format!("{name}.log"));
        let file =
            std::fs::create_dir_all(&dir).ok().and_then(|()| std::fs::File::create(&path).ok());
        Self { file, path }
    }

    /// Where the log file lives.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Writes one line to stdout and the log file.
    pub fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        println!("{s}");
        if let Some(f) = &mut self.file {
            use std::io::Write as _;
            let _ = writeln!(f, "{s}");
        }
    }
}

/// `println!` that also appends to an [`ExpLog`].
#[macro_export]
macro_rules! logln {
    ($log:expr) => { $log.line("") };
    ($log:expr, $($arg:tt)*) => { $log.line(format!($($arg)*)) };
}

/// Shared experiment environment, configurable through environment variables:
///
/// * `IMCAT_SCALE`   — multiplier on the preset dataset sizes (default 1.0;
///   presets are already laptop-scale versions of Table I).
/// * `IMCAT_EPOCHS`  — max training epochs (default 60).
/// * `IMCAT_TRIALS`  — trials per cell with different initializations
///   (paper: 5; default 1 for quick runs).
/// * `IMCAT_DIM`     — embedding dimension (default 32; paper uses 64).
/// * `IMCAT_CKPT_DIR`   — enable crash-safe trial resume: each trial
///   checkpoints its trainer state under
///   `<dir>/<model>_<dataset>_<seed>/` and caches its finished result
///   there, so a restarted experiment binary skips completed trials and
///   resumes the interrupted one mid-training.
/// * `IMCAT_CKPT_EVERY` — epochs between trainer checkpoints (default 10;
///   only meaningful with `IMCAT_CKPT_DIR`).
#[derive(Clone, Debug)]
pub struct Env {
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Max epochs per run.
    pub max_epochs: usize,
    /// Trials per (model, dataset) cell.
    pub trials: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Split / generation seed (fixed per the paper: same partition across
    /// trials).
    pub data_seed: u64,
    /// Root directory for per-trial checkpoints; `None` disables resume.
    pub ckpt_dir: Option<PathBuf>,
    /// Epochs between trainer checkpoints.
    pub ckpt_every: usize,
}

impl Default for Env {
    fn default() -> Self {
        Self {
            scale: 1.0,
            max_epochs: 60,
            trials: 1,
            dim: 32,
            data_seed: 2023,
            ckpt_dir: None,
            ckpt_every: 10,
        }
    }
}

impl Env {
    /// Reads overrides from the environment.
    pub fn from_env() -> Self {
        let mut e = Self::default();
        if let Ok(v) = std::env::var("IMCAT_SCALE") {
            e.scale = v.parse().expect("IMCAT_SCALE must be a float");
        }
        if let Ok(v) = std::env::var("IMCAT_EPOCHS") {
            e.max_epochs = v.parse().expect("IMCAT_EPOCHS must be an integer");
        }
        if let Ok(v) = std::env::var("IMCAT_TRIALS") {
            e.trials = v.parse().expect("IMCAT_TRIALS must be an integer");
        }
        if let Ok(v) = std::env::var("IMCAT_DIM") {
            e.dim = v.parse().expect("IMCAT_DIM must be an integer");
        }
        if let Some(v) = std::env::var_os("IMCAT_CKPT_DIR") {
            e.ckpt_dir = Some(PathBuf::from(v));
        }
        if let Ok(v) = std::env::var("IMCAT_CKPT_EVERY") {
            e.ckpt_every = v.parse().expect("IMCAT_CKPT_EVERY must be an integer");
        }
        e
    }

    /// Per-trial checkpoint directory `<ckpt_dir>/<model>_<dataset>_<seed>`,
    /// when trial resume is enabled.
    pub fn trial_dir(&self, model: &str, dataset: &str, seed: u64) -> Option<PathBuf> {
        let sanitize = |s: &str| -> String {
            s.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' }).collect()
        };
        self.ckpt_dir
            .as_ref()
            .map(|d| d.join(format!("{}_{}_{seed}", sanitize(model), sanitize(dataset))))
    }

    /// Training hyper-parameters (paper §V-D values, scaled dim).
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig { dim: self.dim, ..TrainConfig::default() }
    }

    /// Default IMCAT configuration used across experiments.
    pub fn imcat_config(&self) -> ImcatConfig {
        ImcatConfig { pretrain_epochs: 5, ..ImcatConfig::default() }
    }

    /// Trainer settings (scaled-down version of 3000 epochs / patience 100).
    /// Checkpointing is wired up per trial by [`run_one`], not here.
    pub fn trainer_config(&self, seed: u64) -> TrainerConfig {
        TrainerConfig {
            max_epochs: self.max_epochs,
            patience: 3,
            eval_every: 10,
            eval_at: 20,
            seed,
            ..TrainerConfig::default()
        }
    }

    /// Generates and splits one preset at this environment's scale.
    pub fn dataset(&self, preset: &SynthConfig) -> SplitDataset {
        let cfg = preset.clone().scaled(self.scale);
        let data = generate(&cfg, self.data_seed);
        let mut rng = StdRng::seed_from_u64(self.data_seed ^ 0x517);
        data.dataset.split((0.7, 0.1, 0.2), &mut rng)
    }
}

/// Short dataset keys used on the command line.
pub fn preset_by_key(key: &str) -> Option<SynthConfig> {
    match key.to_ascii_lowercase().as_str() {
        "mv" | "hetrec-mv" => Some(SynthConfig::hetrec_mv()),
        "fm" | "hetrec-fm" => Some(SynthConfig::hetrec_fm()),
        "del" | "hetrec-del" => Some(SynthConfig::hetrec_del()),
        "cite" | "citeulike" => Some(SynthConfig::citeulike()),
        "lastfm" | "last.fm-tag" => Some(SynthConfig::lastfm_tag()),
        "amz" | "amzbook-tag" => Some(SynthConfig::amzbook_tag()),
        "yelp" | "yelp-tag" => Some(SynthConfig::yelp_tag()),
        _ => None,
    }
}

/// All dataset keys in Table I order.
pub fn all_preset_keys() -> [&'static str; 7] {
    ["mv", "fm", "del", "cite", "lastfm", "amz", "yelp"]
}

/// One trained-and-evaluated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Model display name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Initialization seed.
    pub seed: u64,
    /// Test Recall@20.
    pub recall: f64,
    /// Test NDCG@20.
    pub ndcg: f64,
    /// Wall-clock training seconds (excluding evaluation).
    pub train_seconds: f64,
    /// Epochs actually run before early stopping.
    pub epochs: usize,
}

imcat_obs::impl_to_json!(RunResult { model, dataset, seed, recall, ndcg, train_seconds, epochs });

/// Caches a finished trial's result (and per-user detail) next to the
/// trial's trainer checkpoint, so a restarted experiment binary can skip it.
fn save_trial_result(
    path: &Path,
    result: &RunResult,
    per_user: &PerUserMetrics,
) -> std::io::Result<u64> {
    let mut enc = Encoder::new();
    enc.put_str(&result.model);
    enc.put_str(&result.dataset);
    enc.put_u64(result.seed);
    enc.put_f64(result.recall);
    enc.put_f64(result.ndcg);
    enc.put_f64(result.train_seconds);
    enc.put_u64(result.epochs as u64);
    enc.put_u32s(&per_user.users);
    enc.put_f64s(&per_user.recall);
    enc.put_f64s(&per_user.ndcg);
    let mut ck = Checkpoint::new();
    ck.insert("result", enc.into_bytes());
    ck.save(path)
}

/// Loads a cached trial result, verifying it belongs to exactly this
/// `(model, dataset, seed)` cell. Any mismatch or corruption simply means
/// "no cache" — the trial reruns.
fn load_trial_result(
    path: &Path,
    model: &str,
    dataset: &str,
    seed: u64,
) -> Option<(RunResult, PerUserMetrics)> {
    let ck = Checkpoint::load(path).ok()?;
    let mut dec = Decoder::new(ck.get("result")?);
    let decoded = (|| -> std::io::Result<(RunResult, PerUserMetrics)> {
        let result = RunResult {
            model: dec.str()?.to_string(),
            dataset: dec.str()?.to_string(),
            seed: dec.u64()?,
            recall: dec.f64()?,
            ndcg: dec.f64()?,
            train_seconds: dec.f64()?,
            epochs: dec.u64()? as usize,
        };
        let per_user =
            PerUserMetrics { users: dec.u32s()?, recall: dec.f64s()?, ndcg: dec.f64s()? };
        Ok((result, per_user))
    })()
    .ok()?;
    let (result, _) = &decoded;
    if result.model != model || result.dataset != dataset || result.seed != seed {
        return None;
    }
    Some(decoded)
}

/// Trains `kind` on `data` and evaluates test Recall/NDCG@20. With
/// `IMCAT_CKPT_DIR` set, the trial checkpoints its trainer state every
/// `IMCAT_CKPT_EVERY` epochs, resumes mid-training after a kill, and skips
/// entirely once its cached result exists.
pub fn run_one(
    kind: ModelKind,
    data: &SplitDataset,
    env: &Env,
    icfg: &ImcatConfig,
    seed: u64,
) -> (RunResult, PerUserMetrics) {
    let trial_dir = env.trial_dir(kind.name(), &data.name, seed);
    let result_path = trial_dir.as_ref().map(|d| d.join("result.ckpt"));
    if let Some(path) = &result_path {
        if let Some(cached) = load_trial_result(path, kind.name(), &data.name, seed) {
            if imcat_obs::enabled() {
                imcat_obs::counter_add("bench.trial_skips", 1);
                imcat_obs::emit(
                    "trial_skip",
                    vec![
                        ("model", Json::Str(kind.name().to_string())),
                        ("dataset", Json::Str(data.name.clone())),
                        ("seed", Json::Num(seed as f64)),
                    ],
                );
            }
            return cached;
        }
    }
    let tcfg = env.train_config();
    let mut model = kind.build(data, &tcfg, icfg, seed);
    let snap0 = imcat_obs::snapshot();
    let mut trainer_cfg = env.trainer_config(seed);
    if let Some(dir) = &trial_dir {
        trainer_cfg.checkpoint_dir = Some(dir.clone());
        trainer_cfg.checkpoint_every = env.ckpt_every;
    }
    let report = imcat_core::train(model.as_mut(), data, &trainer_cfg);
    let t0 = Instant::now();
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let per_user = evaluate_per_user(&mut score_fn, data, &EvalSpec::at(20));
    let _ = t0;
    if imcat_obs::enabled() {
        // Snapshot delta isolates this run's phase times even when several
        // runs share one process.
        let snap1 = imcat_obs::snapshot();
        let mut fields: Vec<(&str, Json)> = vec![
            ("model", Json::Str(kind.name().to_string())),
            ("dataset", Json::Str(data.name.clone())),
            ("seed", Json::Num(seed as f64)),
            ("train_seconds", Json::Num(report.train_seconds)),
        ];
        let mut accounted = 0.0;
        for phase in TRAIN_PHASES {
            let dt = snap1.hist_sum(phase) - snap0.hist_sum(phase);
            accounted += dt;
            fields.push((phase, Json::Num(dt)));
        }
        fields.push(("phase.other", Json::Num((report.train_seconds - accounted).max(0.0))));
        fields.push((
            "phase.eval",
            Json::Num(snap1.hist_sum("phase.eval") - snap0.hist_sum("phase.eval")),
        ));
        imcat_obs::emit("run_phase_breakdown", fields);
    }
    let agg = per_user.aggregate();
    let result = RunResult {
        model: kind.name().to_string(),
        dataset: data.name.clone(),
        seed,
        recall: agg.recall,
        ndcg: agg.ndcg,
        train_seconds: report.train_seconds,
        epochs: report.epochs_run,
    };
    if let Some(path) = &result_path {
        if let Err(e) = save_trial_result(path, &result, &per_user) {
            eprintln!("warning: could not cache trial result to {}: {e}", path.display());
        }
    }
    (result, per_user)
}

/// Maps `f` over `items`, fanning the calls out over the `imcat-par` pool
/// when that cannot disturb measurement: telemetry must be off (the global
/// registry is shared across threads, so the per-run snapshot deltas taken by
/// [`run_one`] would mix concurrent runs' phase times together) and the pool
/// must actually have spare threads. Results come back in item order either
/// way, and every run is seeded, so the output is identical between the
/// serial and parallel paths.
pub fn run_parallel<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if imcat_obs::enabled() || !imcat_par::parallelism_available() {
        return items.iter().map(f).collect();
    }
    imcat_par::global().map_chunks(items.len(), 1, |ci, _| f(&items[ci]))
}

/// Runs `env.trials` seeds of a cell (in parallel when telemetry is off),
/// returning all results plus the pooled per-user recall vectors (for paired
/// t-tests across models).
pub fn run_trials(
    kind: ModelKind,
    data: &SplitDataset,
    env: &Env,
    icfg: &ImcatConfig,
) -> (Vec<RunResult>, Vec<f64>) {
    let seeds: Vec<u64> = (0..env.trials).map(|t| 1000 + t as u64).collect();
    let runs = run_parallel(&seeds, |&seed| run_one(kind, data, env, icfg, seed));
    let mut results = Vec::with_capacity(env.trials);
    let mut pooled: Vec<f64> = Vec::new();
    for (r, per_user) in runs {
        results.push(r);
        if pooled.is_empty() {
            pooled = per_user.recall.clone();
        } else {
            for (p, r2) in pooled.iter_mut().zip(&per_user.recall) {
                *p += r2;
            }
        }
    }
    for p in &mut pooled {
        *p /= env.trials as f64;
    }
    (results, pooled)
}

/// Writes a report under `target/experiments/<name>.json`.
pub fn write_json<T: ToJson>(name: &str, value: &T) -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("cannot create target/experiments");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().pretty()).expect("cannot write experiment JSON");
    path
}

/// Mean of per-seed values of one field.
pub fn mean_of(results: &[RunResult], f: impl Fn(&RunResult) -> f64) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(f).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_and_parsing() {
        let e = Env::default();
        assert_eq!(e.dim, 32);
        assert_eq!(e.trials, 1);
        assert!(preset_by_key("mv").is_some());
        assert!(preset_by_key("bogus").is_none());
        assert_eq!(all_preset_keys().len(), 7);
    }

    #[test]
    fn run_one_smoke() {
        let env = Env { max_epochs: 3, ..Env::default() };
        let preset = SynthConfig::tiny();
        let cfg = preset.clone();
        let data = {
            let d = generate(&cfg, 1);
            let mut rng = StdRng::seed_from_u64(2);
            d.dataset.split((0.7, 0.1, 0.2), &mut rng)
        };
        let icfg = ImcatConfig { pretrain_epochs: 1, ..Default::default() };
        let (r, per_user) = run_one(ModelKind::Bprmf, &data, &env, &icfg, 7);
        assert_eq!(r.model, "BPRMF");
        assert!(r.recall >= 0.0 && r.recall <= 1.0);
        assert!(r.train_seconds > 0.0);
        assert_eq!(per_user.users.len(), data.test_users().len());
    }

    #[test]
    fn write_json_roundtrip() {
        let path = write_json("unit_test_report", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains('2'));
    }

    #[test]
    fn trial_result_cache_roundtrip_and_mismatch() {
        let dir = std::env::temp_dir().join("imcat_trial_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("result.ckpt");
        let result = RunResult {
            model: "BPRMF".into(),
            dataset: "tiny".into(),
            seed: 42,
            recall: 0.125,
            ndcg: 0.0625,
            train_seconds: 1.5,
            epochs: 7,
        };
        let per_user = PerUserMetrics {
            users: vec![0, 3, 9],
            recall: vec![0.1, 0.2, 0.3],
            ndcg: vec![0.05, 0.1, 0.15],
        };
        save_trial_result(&path, &result, &per_user).unwrap();
        let (r2, p2) = load_trial_result(&path, "BPRMF", "tiny", 42).expect("cache hit");
        assert_eq!(r2.recall.to_bits(), result.recall.to_bits());
        assert_eq!(r2.epochs, result.epochs);
        assert_eq!(p2.users, per_user.users);
        assert_eq!(p2.ndcg, per_user.ndcg);
        // A different cell must not reuse the cache, nor a corrupted file.
        assert!(load_trial_result(&path, "NeuMF", "tiny", 42).is_none());
        assert!(load_trial_result(&path, "BPRMF", "tiny", 43).is_none());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let _ = std::fs::remove_file(dir.join("result.ckpt.prev"));
        assert!(load_trial_result(&path, "BPRMF", "tiny", 42).is_none());
    }

    #[test]
    fn trial_dir_sanitizes_names() {
        let env = Env { ckpt_dir: Some(PathBuf::from("/tmp/x")), ..Env::default() };
        let dir = env.trial_dir("B-IMCAT", "HetRec/MV (s=1)", 1000).unwrap();
        assert_eq!(dir, PathBuf::from("/tmp/x/B-IMCAT_HetRec_MV__s_1__1000"));
        assert!(Env::default().trial_dir("a", "b", 0).is_none());
    }
}
