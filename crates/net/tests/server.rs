//! End-to-end tests of the network front-end over real sockets: routing,
//! keep-alive, wire-level bit-identity with an in-process engine, typed
//! rejections, admission-control shedding, and slow-client containment.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use imcat_ckpt::Artifact;
use imcat_data::{generate, SynthConfig};
use imcat_models::{Bprmf, RecModel, TrainConfig};
use imcat_net::http::read_response;
use imcat_net::{closed_loop, open_loop, NetConfig, Server};
use imcat_obs::Json;
use imcat_serve::{Engine, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Servers spawn worker threads that dispatch on the process-global pool;
/// serialize the socket tests so their load patterns don't interleave.
fn net_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn artifact() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| {
        let synth = generate(&SynthConfig::tiny(), 47);
        let mut rng = StdRng::seed_from_u64(47 ^ 0x5eed);
        let data = synth.dataset.split((0.7, 0.1, 0.2), &mut rng);
        let mut rng = StdRng::seed_from_u64(23);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        for _ in 0..3 {
            model.train_epoch(&mut rng);
        }
        model.export_artifact(&data).expect("bprmf exports an artifact")
    })
}

fn start(cfg: NetConfig) -> Server {
    Server::start(artifact(), &ServeConfig::default(), cfg, "127.0.0.1:0")
        .expect("bind ephemeral port")
}

/// One request on a fresh `Connection: close` socket.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut buf = Vec::new();
    read_response(&mut stream, &mut buf).expect("read response")
}

/// One POST on a fresh `Connection: close` socket, with a body.
fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut buf = Vec::new();
    read_response(&mut stream, &mut buf).expect("read response")
}

#[test]
fn routes_health_stats_and_errors() {
    let _guard = net_lock().lock().unwrap();
    let server = start(NetConfig { shards: 2, ..Default::default() });
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    // Query strings and fragments never break routing.
    let (status, _) = get(addr, "/healthz?probe=1&ts=2");
    assert_eq!(status, 200);

    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("stats is JSON");
    assert_eq!(doc.get("shards").and_then(Json::as_f64), Some(2.0));
    assert_eq!(doc.get("n_items").and_then(Json::as_f64), Some(90.0));

    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, body) = get(addr, "/recommend");
    assert_eq!(status, 400, "missing params: {body}");
    let (status, _) = get(addr, "/recommend?user=abc&k=5");
    assert_eq!(status, 400);
    // A stale user id is the engine's typed rejection, not a panic or 500.
    let n = artifact().n_users();
    let (status, body) = get(addr, &format!("/recommend?user={n}&k=5"));
    assert_eq!(status, 400);
    assert!(body.contains("out of range"), "typed error missing: {body}");
    let (status, body) = get(addr, "/recommend?user=0&k=0");
    assert_eq!(status, 400);
    assert!(body.contains("at least 1"), "typed error missing: {body}");

    // Non-GET is refused.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /recommend HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    let (status, _) = read_response(&mut stream, &mut buf).unwrap();
    assert_eq!(status, 405);

    let stats = server.stats();
    assert!(stats.rejected >= 4, "rejections must be counted: {stats:?}");
    server.shutdown();
}

/// Wire-level parity: answers served over the socket (at 2 shards, through
/// the full accept/queue/tick path) carry exactly the score bits an
/// in-process unsharded engine computes.
#[test]
fn served_answers_are_bit_identical_to_local_engine() {
    let _guard = net_lock().lock().unwrap();
    let server = start(NetConfig { shards: 2, ..Default::default() });
    let addr = server.addr();
    let mut reference = Engine::new(artifact().clone(), ServeConfig::default()).unwrap();

    // Keep-alive: every user through ONE connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut buf = Vec::new();
    for user in 0..artifact().n_users() as u32 {
        write!(stream, "GET /recommend?user={user}&k=10 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut stream, &mut buf).expect("keep-alive response");
        assert_eq!(status, 200, "user {user}: {body}");
        let doc = Json::parse(&body).expect("response is JSON");
        let items: Vec<u32> = doc
            .get("items")
            .and_then(Json::as_array)
            .expect("items array")
            .iter()
            .map(|v| v.as_f64().unwrap() as u32)
            .collect();
        let bits: Vec<u32> = doc
            .get("score_bits")
            .and_then(Json::as_array)
            .expect("score_bits array")
            .iter()
            .map(|v| v.as_f64().unwrap() as u32)
            .collect();
        let want = reference.recommend(user, 10).unwrap();
        assert_eq!(items, want.iter().map(|r| r.item).collect::<Vec<_>>(), "user {user}");
        assert_eq!(
            bits,
            want.iter().map(|r| r.score.to_bits()).collect::<Vec<_>>(),
            "user {user}: score bits diverged over the wire"
        );
    }
    drop(stream);
    server.shutdown();
}

/// Full mutable-serving surface over the wire: registration returns dense
/// ids, single and batch ingestion are accepted with per-line typed errors,
/// an all-rejected batch is a `400`, and the cold user is servable right
/// after the mutating tick (the batcher folds before storing counters).
#[test]
fn streaming_mutations_round_trip_over_the_wire() {
    let _guard = net_lock().lock().unwrap();
    let server = start(NetConfig { shards: 2, ..Default::default() });
    let addr = server.addr();
    let n_users = artifact().n_users() as u32;
    let n_items = artifact().n_items() as u32;

    let (status, body) = post(addr, "/users", "");
    assert_eq!(status, 201, "register user: {body}");
    let cold = Json::parse(&body).unwrap().get("user").and_then(Json::as_f64).unwrap() as u32;
    assert_eq!(cold, n_users, "cold user id must be the next dense id");
    let (status, body) = post(addr, "/items", "");
    assert_eq!(status, 201, "register item: {body}");
    let new_item = Json::parse(&body).unwrap().get("item").and_then(Json::as_f64).unwrap() as u32;
    assert_eq!(new_item, n_items, "cold item id must be the next dense id");

    // Single interaction via query parameters, no body.
    let (status, body) = post(addr, &format!("/ingest?user={cold}&item=3"), "");
    assert_eq!(status, 200, "query ingest: {body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("accepted").and_then(Json::as_f64), Some(1.0), "{body}");
    assert_eq!(doc.get("rejected").and_then(Json::as_f64), Some(0.0), "{body}");

    // Batch via body lines; the middle line names a stale item and is
    // rejected per-line without sinking the rest of the batch.
    let batch = format!("{cold} 5\n0 {}\n{cold} {new_item}\n", n_items + 40);
    let (status, body) = post(addr, "/ingest", &batch);
    assert_eq!(status, 200, "batch ingest: {body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("accepted").and_then(Json::as_f64), Some(2.0), "{body}");
    assert_eq!(doc.get("rejected").and_then(Json::as_f64), Some(1.0), "{body}");
    let errors = doc.get("errors").and_then(Json::as_array).unwrap();
    assert_eq!(errors[0].get("index").and_then(Json::as_f64), Some(1.0), "{body}");
    let msg = errors[0].get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("out of range"), "typed per-line error missing: {body}");

    // Every line stale: the whole request is a 400, still with typed lines.
    let (status, body) = post(addr, "/ingest", &format!("{} 0\n", n_users + 99));
    assert_eq!(status, 400, "all-rejected batch: {body}");
    assert!(body.contains("out of range"), "all-rejected batch keeps typed errors: {body}");
    // Malformed lines and empty payloads are parse-level 400s.
    let (status, _) = post(addr, "/ingest", "1 2 3\n");
    assert_eq!(status, 400);
    let (status, _) = post(addr, "/ingest", "");
    assert_eq!(status, 400);

    // The cold user is servable immediately: the batcher folds pending
    // entities at the end of every mutating tick.
    let (status, body) = get(addr, &format!("/recommend?user={cold}&k=5"));
    assert_eq!(status, 200, "cold user recommend: {body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("items").and_then(Json::as_array).unwrap().len(), 5, "{body}");

    // /stats reflects the mutations and reports the live knob registry.
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("ingested").and_then(Json::as_f64), Some(3.0), "{body}");
    assert_eq!(doc.get("n_users").and_then(Json::as_f64), Some((n_users + 1) as f64), "{body}");
    assert_eq!(doc.get("n_items").and_then(Json::as_f64), Some((n_items + 1) as f64), "{body}");
    let knobs = doc.get("knobs").expect("stats exposes the knob registry");
    assert!(knobs.get("IMCAT_INGEST_FOLD_LAMBDA").is_some(), "knob registry missing: {body}");
    assert_eq!(server.stats().ingested, 3);
    server.shutdown();
}

/// Admission control: with one worker and a one-deep connection queue, a
/// third concurrent connection is shed with a fast 503 by the acceptor —
/// and the counter records it.
#[test]
fn overload_sheds_with_fast_503() {
    let _guard = net_lock().lock().unwrap();
    let server = start(NetConfig {
        shards: 1,
        workers: 1,
        queue: 1,
        deadline: Duration::from_millis(400),
        ..Default::default()
    });
    let addr = server.addr();

    // Two idle connections pin the worker and fill the queue...
    let _idle_a = TcpStream::connect(addr).expect("connect idle a");
    std::thread::sleep(Duration::from_millis(50));
    let _idle_b = TcpStream::connect(addr).expect("connect idle b");
    std::thread::sleep(Duration::from_millis(50));
    // ...so the third is answered 503 by the acceptor itself, fast.
    let t0 = Instant::now();
    let mut shed = TcpStream::connect(addr).expect("connect shed");
    let mut buf = Vec::new();
    let (status, body) = read_response(&mut shed, &mut buf).expect("shed response");
    assert_eq!(status, 503, "expected shed: {body}");
    assert!(body.contains("overloaded"));
    assert!(
        t0.elapsed() < Duration::from_millis(300),
        "shed 503 must be fast, took {:?}",
        t0.elapsed()
    );
    assert!(server.stats().shed >= 1, "shed must be counted: {:?}", server.stats());
    server.shutdown();
}

/// Both load generators complete a small run against a live server: the
/// closed loop answers everything; the open loop (which sheds `503`s into
/// its own bucket) accounts for every scheduled request exactly once.
#[test]
fn load_generators_round_trip() {
    let _guard = net_lock().lock().unwrap();
    let server = start(NetConfig { shards: 2, workers: 2, ..Default::default() });
    let addr = server.addr();
    let n = artifact().n_users() as u32;
    let stream: Vec<(u32, usize)> = (0..120u32).map(|i| (i % n, 10)).collect();

    let closed = closed_loop(addr, &stream, 3);
    assert_eq!(closed.ok, stream.len() as u64, "closed loop: {closed:?}");
    assert_eq!(closed.errors, 0, "closed loop: {closed:?}");
    assert!(closed.p50_us > 0.0 && closed.p99_us >= closed.p50_us);

    let open = open_loop(addr, &stream, 400.0, 4);
    assert_eq!(open.ok + open.shed + open.errors, stream.len() as u64, "open loop: {open:?}");
    assert!(open.ok > 0, "open loop answered nothing: {open:?}");
    assert!((open.offered_qps - 400.0).abs() < 1e-9);
    server.shutdown();
}

/// A slowloris client trickling a partial head is cut off by the
/// per-request deadline with 408 (or a drop) and cannot hold its worker
/// past the deadline.
#[test]
fn slow_clients_are_timed_out() {
    let _guard = net_lock().lock().unwrap();
    let server = start(NetConfig { deadline: Duration::from_millis(300), ..Default::default() });
    let addr = server.addr();

    let mut slow = TcpStream::connect(addr).expect("connect slow");
    slow.write_all(b"GET /hea").expect("partial head");
    slow.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let t0 = Instant::now();
    let mut response = String::new();
    let _ = slow.read_to_string(&mut response);
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "slow connection must be cut off by the 300ms deadline"
    );
    assert!(
        response.is_empty() || response.starts_with("HTTP/1.1 408"),
        "expected 408 or drop, got: {response}"
    );
    // The server is still fully alive afterwards.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(server.stats().timeouts >= 1, "timeout must be counted: {:?}", server.stats());
    server.shutdown();
}
