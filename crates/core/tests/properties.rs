//! Property-based tests for the IMCAT core invariants.

use imcat_core::imca::{cluster_tag_aggregator, relatedness_matrix, PositiveMask};
use imcat_core::irm::{hard_assignment, soft_assignment_tensor, target_distribution};
use imcat_core::isa::SimilarSets;
use imcat_tensor::{normal, Csr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_item_tags(items: usize, tags: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..tags as u32, 0..tags.min(6)),
        items,
    )
    .prop_map(move |sets| {
        let adj: Vec<Vec<u32>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        Csr::from_adjacency(items, tags, &adj)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Q rows are on the simplex and hard assignments point at the maximum.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn soft_assignment_simplex_and_argmax(seed in 0u64..2000, t in 2usize..12, k in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tags = normal(t, 6, 1.0, &mut rng);
        let centers = normal(k, 6, 1.0, &mut rng);
        let q = soft_assignment_tensor(&tags, &centers, 1.0);
        let hard = hard_assignment(&q);
        for l in 0..t {
            let s: f32 = q.row(l).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            let max = q.row(l).iter().cloned().fold(f32::MIN, f32::max);
            prop_assert!((q.get(l, hard[l]) - max).abs() < 1e-7);
        }
    }

    /// The target distribution keeps rows on the simplex.
    #[test]
    fn target_distribution_simplex(seed in 0u64..2000, t in 2usize..10, k in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tags = normal(t, 4, 1.0, &mut rng);
        let centers = normal(k, 4, 1.0, &mut rng);
        let q = soft_assignment_tensor(&tags, &centers, 1.0);
        let qhat = target_distribution(&q);
        for l in 0..t {
            let s: f32 = qhat.row(l).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {l} sums to {s}");
            prop_assert!(qhat.row(l).iter().all(|&x| x >= 0.0));
        }
    }

    /// Cluster aggregators only reference tags of the right cluster, rows sum
    /// to one (or are empty), and the per-cluster aggregators partition the
    /// item-tag incidence.
    #[test]
    fn cluster_aggregators_partition(it in random_item_tags(8, 10), k in 2usize..4) {
        let assignment: Vec<usize> = (0..10).map(|t| t % k).collect();
        let mut covered = 0usize;
        for kk in 0..k {
            let agg = cluster_tag_aggregator(&it, &assignment, kk);
            covered += agg.nnz();
            for j in 0..agg.rows() {
                let s: f32 = agg.row_values(j).iter().sum();
                if agg.row_nnz(j) > 0 {
                    prop_assert!((s - 1.0).abs() < 1e-5);
                }
                for &t in agg.row_indices(j) {
                    prop_assert_eq!(assignment[t as usize], kk);
                    prop_assert!(it.contains(j as u32, t));
                }
            }
        }
        prop_assert_eq!(covered, it.nnz());
    }

    /// Relatedness rows are softmax distributions favoring the cluster with
    /// the most tags.
    #[test]
    fn relatedness_softmax(it in random_item_tags(8, 10), k in 2usize..4) {
        let assignment: Vec<usize> = (0..10).map(|t| t % k).collect();
        let m = relatedness_matrix(&it, &assignment, k);
        for j in 0..8 {
            let s: f32 = m.row(j).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            // argmax of M == argmax of counts.
            let mut counts = vec![0usize; k];
            for &t in it.row_indices(j) {
                counts[assignment[t as usize]] += 1;
            }
            let best_count = *counts.iter().max().unwrap();
            let best_m = m.row(j).iter().cloned().fold(f32::MIN, f32::max);
            let arg_count: Vec<usize> =
                (0..k).filter(|&c| counts[c] == best_count).collect();
            let arg_m = (0..k).find(|&c| (m.get(j, c) - best_m).abs() < 1e-7).unwrap();
            prop_assert!(arg_count.contains(&arg_m));
        }
    }

    /// ISA similar sets are symmetric and threshold-monotone.
    #[test]
    fn similar_sets_symmetric_and_monotone(it in random_item_tags(8, 10)) {
        let assignment: Vec<usize> = (0..10).map(|t| t % 2).collect();
        let loose = SimilarSets::build(&it, &assignment, 2, 0.2);
        let strict = SimilarSets::build(&it, &assignment, 2, 0.8);
        for k in 0..2 {
            for j in 0..8 {
                for &o in loose.of(k, j) {
                    prop_assert!(loose.of(k, o as usize).contains(&(j as u32)));
                }
                // Strict sets are subsets of loose sets.
                for &o in strict.of(k, j) {
                    prop_assert!(loose.of(k, j).contains(&o));
                }
            }
        }
    }

    /// Positive masks: forward rows with positives sum to one; backward rows
    /// re-normalize.
    #[test]
    fn positive_mask_row_normalized(
        lists in proptest::collection::vec(
            proptest::collection::btree_set(0usize..12, 0..4), 6),
    ) {
        let positives: Vec<Vec<usize>> =
            lists.into_iter().map(|s| s.into_iter().collect()).collect();
        let mask = PositiveMask::from_lists(6, 12, &positives);
        for (j, pos) in positives.iter().enumerate() {
            let s: f32 = mask.forward().row(j).iter().sum();
            if pos.is_empty() {
                prop_assert_eq!(s, 0.0);
            } else {
                prop_assert!((s - 1.0).abs() < 1e-5);
            }
        }
        let back = mask.backward();
        for r in 0..back.rows() {
            let s: f32 = back.row(r).iter().sum();
            prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-5);
        }
    }
}
