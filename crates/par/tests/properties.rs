//! Property tests for the deterministic pool: exactly-once index coverage and
//! bitwise serial/parallel equivalence across arbitrary shapes.

use std::sync::atomic::{AtomicU32, Ordering};

use imcat_par::Pool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `parallel_for` over an arbitrary range must visit each index exactly
    /// once, for any grain and pool size.
    #[test]
    fn parallel_for_visits_each_index_exactly_once(
        start in 0usize..50,
        len in 0usize..400,
        grain in 1usize..33,
        threads in 1usize..5,
    ) {
        let pool = Pool::new(threads);
        let counts: Vec<AtomicU32> = (0..start + len).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(start..start + len, grain, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            let expected = u32::from(i >= start);
            prop_assert_eq!(c.load(Ordering::Relaxed), expected, "index {} miscounted", i);
        }
    }

    /// Chunked reductions merged in chunk order are bit-identical between a
    /// serial pool and a parallel one.
    #[test]
    fn map_chunks_reduction_is_threadcount_invariant(
        xs in proptest::collection::vec(-1.0f32..1.0, 1..600),
        chunk in 1usize..64,
    ) {
        let reduce = |pool: &Pool| -> f32 {
            pool.map_chunks(xs.len(), chunk, |_, r| xs[r].iter().sum::<f32>())
                .into_iter()
                .fold(0.0f32, |a, b| a + b)
        };
        let serial = reduce(&Pool::new(1));
        let parallel = reduce(&Pool::new(4));
        prop_assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    /// `parallel_chunks_mut` writes every element of the buffer exactly once
    /// with its own chunk's data — no overlap, no gaps.
    #[test]
    fn chunked_mut_fanout_partitions_the_buffer(
        len in 0usize..300,
        chunk in 1usize..41,
        threads in 1usize..5,
    ) {
        let pool = Pool::new(threads);
        let mut data = vec![u32::MAX; len];
        pool.parallel_chunks_mut(&mut data, chunk, |ci, slice| {
            for (off, x) in slice.iter_mut().enumerate() {
                *x = (ci * chunk + off) as u32;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(x, i as u32);
        }
    }
}
