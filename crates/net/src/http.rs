//! Minimal HTTP/1.1 plumbing for the serving front-end — `std`-only, built
//! on the same parsing discipline as `imcat-obs`'s telemetry endpoint
//! (bounded heads, total deadlines, tail-overlap terminator scans) but
//! extended to persistent connections carrying many requests.
//!
//! Server side: [`Conn`] wraps an accepted `TcpStream` with a carry-over
//! read buffer (pipelined bytes past one head belong to the next request)
//! and writes keep-alive aware responses. Client side: [`read_response`]
//! parses one status + `Content-Length` delimited body, for the load
//! generators.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum request/response head size. Anything larger is malformed.
pub const MAX_HEAD: usize = 8 * 1024;
/// Maximum request body size (`POST /ingest` batches). Anything larger is
/// rejected before buffering.
pub const MAX_BODY: usize = 64 * 1024;
/// Per-read/write socket timeout; total deadlines cap it further.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Plain-text content type.
pub const TEXT: &str = "text/plain; charset=utf-8";
/// JSON content type.
pub const JSON: &str = "application/json; charset=utf-8";

/// One parsed request: head plus a `Content-Length` delimited body
/// (bounded by [`MAX_BODY`]; empty for the GET routes).
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Raw request target, query string included.
    pub target: String,
    /// Whether the connection persists after the response.
    pub keep_alive: bool,
    /// Request body bytes (empty when the request carried none).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path with any query string or fragment stripped.
    pub fn path(&self) -> &str {
        self.target.split(['?', '#']).next().unwrap_or(&self.target)
    }

    /// The raw value of query parameter `key`, if present. No percent
    /// decoding: the serving API's parameters are numeric.
    pub fn query(&self, key: &str) -> Option<&str> {
        let (_, query) = self.target.split_once('?')?;
        query
            .split('#')
            .next()
            .unwrap_or(query)
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(name, _)| *name == key)
            .map(|(_, value)| value)
    }
}

/// A server-side connection: socket plus carry-over buffer, so pipelined
/// bytes read past one request head are not lost to the next.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Bytes of `buf` already known to not contain the head terminator
    /// (minus a 3-byte overlap) — keeps slow-client scans linear.
    scanned: usize,
}

fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    buf[from..].windows(4).position(|w| w == b"\r\n\r\n").map(|p| from + p + 4)
}

impl Conn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        // Request/response exchanges are single small packets; leaving Nagle
        // on costs a delayed-ACK round (~40ms) per keep-alive exchange.
        let _ = stream.set_nodelay(true);
        Self { stream, buf: Vec::with_capacity(512), scanned: 0 }
    }

    /// Reads one request (head + `Content-Length` body), enforcing
    /// `deadline` across every read.
    ///
    /// Returns `Ok(None)` on a clean close between requests (the idle end
    /// of a keep-alive connection). A timeout surfaces as
    /// [`io::ErrorKind::TimedOut`]; an oversized or malformed head — or a
    /// body past [`MAX_BODY`] — as [`io::ErrorKind::InvalidData`].
    pub fn read_request(&mut self, deadline: Instant) -> io::Result<Option<Request>> {
        loop {
            let from = self.scanned.saturating_sub(3).min(self.buf.len());
            if let Some(end) = find_head_end(&self.buf, from) {
                let head: Vec<u8> = self.buf.drain(..end).collect();
                self.scanned = 0;
                let (mut request, content_len) = parse_head(&head)?;
                if content_len > MAX_BODY {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "request body too large",
                    ));
                }
                // Pipelined body bytes may already sit in the carry-over
                // buffer; read the remainder under the same deadline.
                while self.buf.len() < content_len {
                    if self.fill_buf(deadline)? == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-body",
                        ));
                    }
                }
                request.body = self.buf.drain(..content_len).collect();
                return Ok(Some(request));
            }
            self.scanned = self.buf.len();
            if self.buf.len() >= MAX_HEAD {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "request head too large"));
            }
            let n = self.fill_buf(deadline)?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-request",
                    ))
                };
            }
        }
    }

    /// One deadline-bounded socket read appended to the carry-over buffer.
    /// Returns the byte count (0 = peer closed); mid-request EOF handling is
    /// the caller's.
    fn fill_buf(&mut self, deadline: Instant) -> io::Result<usize> {
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "request deadline exceeded"));
        };
        self.stream.set_read_timeout(Some(remaining.min(IO_TIMEOUT)))?;
        let mut chunk = [0u8; 1024];
        match self.stream.read(&mut chunk) {
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "read timed out"))
            }
            Err(e) => Err(e),
        }
    }

    /// Writes one response. `keep_alive: false` advertises
    /// `Connection: close`; the caller is expected to drop the connection.
    pub fn respond(
        &mut self,
        status: &str,
        content_type: &str,
        body: &str,
        keep_alive: bool,
    ) -> io::Result<()> {
        write_response(&mut self.stream, status, content_type, body, keep_alive)
    }
}

fn parse_head(head: &[u8]) -> io::Result<(Request, usize)> {
    let text = String::from_utf8_lossy(head);
    let mut lines = text.lines();
    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || target.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed request line"));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // Connection header overrides either way.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_len = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim();
        if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            content_len = value
                .trim()
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        }
    }
    Ok((Request { method, target, keep_alive, body: Vec::new() }, content_len))
}

/// Writes one response onto a raw stream (used by [`Conn::respond`] and by
/// the acceptor's fast-shed path, which never builds a `Conn`).
pub fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One coalesced write: a head-then-body pair of small writes interacts
    // with Nagle + delayed ACK into ~40ms stalls on keep-alive connections.
    let mut response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Client side: reads one `Content-Length` delimited response from
/// `stream`, carrying leftover bytes across calls in `buf` (keep-alive).
/// Returns the status code and body.
pub fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<(u16, String)> {
    let mut chunk = [0u8; 2048];
    let end = loop {
        // Responses are small (one head + one JSON body), so the rescan from
        // 0 stays cheap; the buffer is drained after every response.
        if let Some(end) = find_head_end(buf, 0) {
            break end;
        }
        if buf.len() >= MAX_HEAD {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed mid-response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let len: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing content-length"))?;
    while buf.len() < end + len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed mid-body"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[end..end + len]).to_string();
    buf.drain(..end + len);
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_path_and_query_parsing() {
        let req = Request {
            method: "GET".into(),
            target: "/recommend?user=7&k=20#frag".into(),
            keep_alive: true,
            body: Vec::new(),
        };
        assert_eq!(req.path(), "/recommend");
        assert_eq!(req.query("user"), Some("7"));
        assert_eq!(req.query("k"), Some("20"));
        assert_eq!(req.query("missing"), None);
        let bare = Request {
            method: "GET".into(),
            target: "/healthz".into(),
            keep_alive: true,
            body: Vec::new(),
        };
        assert_eq!(bare.path(), "/healthz");
        assert_eq!(bare.query("user"), None);
    }

    #[test]
    fn head_parsing_versions_and_connection_header() {
        let (req, _) = parse_head(b"GET /x HTTP/1.1\r\nHost: a\r\n\r\n").unwrap();
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let (req, _) = parse_head(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let (req, _) = parse_head(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let (req, _) = parse_head(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        assert!(parse_head(b"\r\n\r\n").is_err());
    }

    #[test]
    fn head_parsing_reads_content_length() {
        let (req, len) =
            parse_head(b"POST /ingest HTTP/1.1\r\nContent-Length: 11\r\n\r\n").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(len, 11);
        assert!(parse_head(b"POST /x HTTP/1.1\r\nContent-Length: junk\r\n\r\n").is_err());
    }
}
