//! Backbone compatibility demo (paper §V-C): IMCAT is model-agnostic — this
//! example trains all three backbones with and without the IMCAT plug-in and
//! reports the uplift, mirroring the B-/N-/L-IMCAT rows of Table II.
//!
//! ```sh
//! cargo run --release --example backbone_comparison
//! ```

use imcat::prelude::*;

fn train_and_test(model: &mut dyn RecModel, split: &SplitDataset) -> (f64, usize, f64) {
    let cfg = TrainerConfig { max_epochs: 80, eval_every: 10, patience: 3, ..Default::default() };
    let report = trainer::train(model, split, &cfg);
    let mut score_fn = |users: &[u32]| model.score_users(users);
    let m = evaluate(&mut score_fn, split, &EvalSpec::at(20));
    (m.recall, report.epochs_run, report.train_seconds)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let synth = generate(&SynthConfig::hetrec_del().scaled(0.6), 5);
    let split = synth.dataset.split((0.7, 0.1, 0.2), &mut rng);
    println!("{}\n", synth.dataset.stats());
    println!("{:<12} {:>8} {:>8} {:>10}", "model", "R@20", "epochs", "time(s)");

    let icfg = ImcatConfig { pretrain_epochs: 5, ..Default::default() };
    let tcfg = TrainConfig::default;

    // BPRMF and B-IMCAT.
    let mut bprmf = Bprmf::new(&split, tcfg(), &mut rng);
    let (r, e, t) = train_and_test(&mut bprmf, &split);
    println!("{:<12} {:>8.4} {:>8} {:>10.1}", "BPRMF", r, e, t);
    let mut b_imcat =
        Imcat::new(Bprmf::new(&split, tcfg(), &mut rng), &split, icfg.clone(), &mut rng);
    let (r, e, t) = train_and_test(&mut b_imcat, &split);
    println!("{:<12} {:>8.4} {:>8} {:>10.1}", "B-IMCAT", r, e, t);

    // NeuMF and N-IMCAT.
    let mut neumf = Neumf::new(&split, tcfg(), &mut rng);
    let (r, e, t) = train_and_test(&mut neumf, &split);
    println!("{:<12} {:>8.4} {:>8} {:>10.1}", "NeuMF", r, e, t);
    let mut n_imcat =
        Imcat::new(Neumf::new(&split, tcfg(), &mut rng), &split, icfg.clone(), &mut rng);
    let (r, e, t) = train_and_test(&mut n_imcat, &split);
    println!("{:<12} {:>8.4} {:>8} {:>10.1}", "N-IMCAT", r, e, t);

    // LightGCN and L-IMCAT.
    let mut lightgcn = LightGcn::new(&split, tcfg(), &mut rng);
    let (r, e, t) = train_and_test(&mut lightgcn, &split);
    println!("{:<12} {:>8.4} {:>8} {:>10.1}", "LightGCN", r, e, t);
    let mut l_imcat = Imcat::new(LightGcn::new(&split, tcfg(), &mut rng), &split, icfg, &mut rng);
    let (r, e, t) = train_and_test(&mut l_imcat, &split);
    println!("{:<12} {:>8.4} {:>8} {:>10.1}", "L-IMCAT", r, e, t);
}
