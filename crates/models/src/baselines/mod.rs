//! Comparison baselines from the paper's §V-C, organized by category:
//! tag-enhanced (CFA, DSPR, TGCN), KG-enhanced (CKE, RippleNet, KGAT, KGIN),
//! and SSL-based (SGL, KGCL). Each file documents which defining mechanism
//! of the original method is preserved and which engineering details were
//! simplified.

mod cfa;
mod cke;
mod dspr;
mod kgat;
mod kgcl;
mod kgin;
mod profiles;
mod ripplenet;
mod sgl;
mod tgcn;
pub mod unified;

pub use cfa::Cfa;
pub use cke::Cke;
pub use dspr::Dspr;
pub use kgat::Kgat;
pub use kgcl::Kgcl;
pub use kgin::Kgin;
pub use profiles::{item_tag_profiles, select_rows, user_tag_profiles};
pub use ripplenet::RippleNet;
pub use sgl::Sgl;
pub use tgcn::Tgcn;
