//! Long-tail and cold-start decompositions (paper Figs. 7 and 8).
//!
//! * Fig. 7 splits items into five equal-size popularity groups `G1..G5`
//!   (interaction count ascending) and reports each group's *contribution*
//!   to the overall Recall@20: hits restricted to the group, so the per-group
//!   values sum to the overall recall.
//! * Fig. 8 evaluates the sparse-user population (fewer than 10 training
//!   interactions).

use imcat_data::SplitDataset;
use imcat_tensor::Tensor;

use crate::metrics::{evaluate_per_user, top_n_masked_with, EvalSpec, PerUserMetrics, TopKScratch};

/// Assigns items to `n_groups` equal-size popularity groups by ascending
/// training-interaction count (`G1` = least popular).
pub fn item_popularity_groups(data: &SplitDataset, n_groups: usize) -> Vec<usize> {
    imcat_graph::degree_groups(&data.train.col_degrees(), n_groups)
}

/// Per-group contribution to Recall@N: `result[g]` is the mean over users of
/// `|top_N ∩ test ∩ G_g| / |test|`. The contributions sum to overall recall.
pub fn group_recall_contribution(
    score_fn: &mut dyn FnMut(&[u32]) -> Tensor,
    data: &SplitDataset,
    n: usize,
    groups: &[usize],
    n_groups: usize,
) -> Vec<f64> {
    assert_eq!(groups.len(), data.n_items());
    let users: Vec<u32> = data.test_users();
    let mut contrib = vec![0f64; n_groups];
    if users.is_empty() {
        return contrib;
    }
    let mut scratch = TopKScratch::default();
    for chunk in users.chunks(256) {
        let scores = score_fn(chunk);
        for (row, &u) in chunk.iter().enumerate() {
            let train = data.train_items(u as usize);
            let top = top_n_masked_with(scores.row(row), train, n, &mut scratch);
            let truth = &data.test[u as usize];
            for &j in top {
                if truth.contains(&j) {
                    contrib[groups[j as usize]] += 1.0 / truth.len() as f64;
                }
            }
        }
    }
    for c in &mut contrib {
        *c /= users.len() as f64;
    }
    contrib
}

/// Users with fewer than `threshold` training interactions (and a non-empty
/// test set) — the cold-start population of Fig. 8.
pub fn cold_start_users(data: &SplitDataset, threshold: usize) -> Vec<u32> {
    (0..data.n_users() as u32)
        .filter(|&u| {
            data.train_items(u as usize).len() < threshold && !data.test[u as usize].is_empty()
        })
        .collect()
}

/// Test-split metrics restricted to a user subset (scores only the subset;
/// per-user results are bit-identical to a full evaluation's).
pub fn evaluate_user_subset(
    score_fn: &mut dyn FnMut(&[u32]) -> Tensor,
    data: &SplitDataset,
    n: usize,
    subset: &[u32],
) -> PerUserMetrics {
    evaluate_per_user(score_fn, data, &EvalSpec::at(n).users(subset.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_data::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn split() -> SplitDataset {
        let data = generate(&SynthConfig::tiny(), 9);
        let mut rng = StdRng::seed_from_u64(1);
        data.dataset.split((0.7, 0.1, 0.2), &mut rng)
    }

    #[test]
    fn groups_are_balanced_and_ordered() {
        let data = split();
        let groups = item_popularity_groups(&data, 5);
        let mut counts = vec![0usize; 5];
        for &g in &groups {
            counts[g] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 5, "unbalanced groups: {counts:?}");
        // Mean degree must rise from G1 to G5.
        let degs = data.train.col_degrees();
        let mean = |g: usize| {
            let (s, c) = degs
                .iter()
                .zip(&groups)
                .filter(|(_, &gg)| gg == g)
                .fold((0usize, 0usize), |(s, c), (&d, _)| (s + d, c + 1));
            s as f64 / c.max(1) as f64
        };
        assert!(mean(0) < mean(4));
    }

    #[test]
    fn group_contributions_sum_to_overall_recall() {
        let data = split();
        let mut rng = StdRng::seed_from_u64(2);
        // Random but fixed scores.
        let table = imcat_tensor::normal(data.n_users(), data.n_items(), 1.0, &mut rng);
        let mut score_fn = |users: &[u32]| {
            let mut t = Tensor::zeros(users.len(), data.n_items());
            for (r, &u) in users.iter().enumerate() {
                t.row_mut(r).copy_from_slice(table.row(u as usize));
            }
            t
        };
        let groups = item_popularity_groups(&data, 5);
        let contrib = group_recall_contribution(&mut score_fn, &data, 20, &groups, 5);
        let overall = crate::metrics::evaluate(&mut score_fn, &data, &EvalSpec::at(20));
        let sum: f64 = contrib.iter().sum();
        assert!(
            (sum - overall.recall).abs() < 1e-9,
            "contributions {sum} != overall {}",
            overall.recall
        );
    }

    #[test]
    fn cold_users_have_few_interactions() {
        let data = split();
        let cold = cold_start_users(&data, 10);
        assert!(!cold.is_empty(), "tiny config should produce cold users");
        for &u in &cold {
            assert!(data.train_items(u as usize).len() < 10);
        }
    }

    #[test]
    fn subset_evaluation_restricts_population() {
        let data = split();
        let mut score_fn = |users: &[u32]| Tensor::zeros(users.len(), data.n_items());
        let cold = cold_start_users(&data, 10);
        let m = evaluate_user_subset(&mut score_fn, &data, 20, &cold);
        assert_eq!(m.users.len(), cold.len());
    }
}
