//! Generic training loop with validation-based early stopping (paper §V-D:
//! up to 3000 epochs, stop when validation Recall@20 has not improved for
//! 100 epochs; both scaled down by default for CPU runs) and wall-clock
//! accounting for the efficiency analysis of Fig. 9.

use std::collections::HashSet;
use std::time::Instant;

use imcat_data::SplitDataset;
use imcat_models::RecModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in evaluation rounds.
    pub patience: usize,
    /// Evaluate on validation every this many epochs.
    pub eval_every: usize,
    /// Cutoff `N` for validation Recall@N.
    pub eval_at: usize,
    /// RNG seed for sampling during training.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self { max_epochs: 120, patience: 5, eval_every: 5, eval_at: 20, seed: 7 }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Model name.
    pub model: String,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Best validation Recall@N seen.
    pub best_val_recall: f64,
    /// Mean training loss of the final epoch.
    pub final_loss: f32,
    /// Total wall-clock training time in seconds (excludes evaluation).
    pub train_seconds: f64,
    /// Validation recall trajectory `(epoch, recall)`.
    pub curve: Vec<(usize, f64)>,
}

/// Validation Recall@N (training items masked), shared by the trainer and the
/// experiment harness.
pub fn validation_recall(model: &dyn RecModel, data: &SplitDataset, n: usize) -> f64 {
    let users: Vec<u32> =
        (0..data.n_users() as u32).filter(|&u| !data.val[u as usize].is_empty()).collect();
    if users.is_empty() {
        return 0.0;
    }
    let _sp = imcat_obs::span("phase.eval");
    let scores = model.score_users(&users);
    // Scoring happens above on this thread (models are not `Sync`); the
    // per-user ranking math fans out over the pool. Each user fills its own
    // slot and the slots are reduced in user order, so the recall is
    // bit-identical for any thread count.
    let mut per_user = vec![(0.0f64, 0u64); users.len()];
    imcat_par::global().parallel_chunks_mut(&mut per_user, 64, |ci, slots| {
        let mut train_set: HashSet<u32> = HashSet::new();
        for (off, slot) in slots.iter_mut().enumerate() {
            let row = ci * 64 + off;
            let u = users[row];
            train_set.clear();
            train_set.extend(data.train_items(u as usize).iter().copied());
            let mut ranked: Vec<(usize, f32)> = scores
                .row(row)
                .iter()
                .copied()
                .enumerate()
                .filter(|&(j, _)| !train_set.contains(&(j as u32)))
                .collect();
            let bad = ranked.iter().filter(|(_, s)| !s.is_finite()).count() as u64;
            // total_cmp keeps the ranking well-defined even when a diverged
            // model produces NaN scores; the guard event below makes that
            // visible.
            let top_n = n.min(ranked.len());
            if top_n > 0 && top_n < ranked.len() {
                ranked.select_nth_unstable_by(top_n - 1, |a, b| b.1.total_cmp(&a.1));
            }
            let top: HashSet<usize> = ranked[..top_n].iter().map(|&(j, _)| j).collect();
            let val = &data.val[u as usize];
            let hits = val.iter().filter(|&&t| top.contains(&(t as usize))).count();
            *slot = (hits as f64 / val.len() as f64, bad);
        }
    });
    let mut total = 0.0;
    let mut nonfinite = 0u64;
    for &(recall, bad) in &per_user {
        total += recall;
        nonfinite += bad;
    }
    if nonfinite > 0 && imcat_obs::enabled() {
        imcat_obs::counter_add("guard.nonfinite_score", nonfinite);
        imcat_obs::emit(
            "nonfinite_scores",
            vec![("elements", imcat_obs::Json::Num(nonfinite as f64))],
        );
    }
    total / users.len() as f64
}

/// Trains `model` until early stopping or `max_epochs`, reporting the best
/// validation recall and wall-clock time.
pub fn train(model: &mut dyn RecModel, data: &SplitDataset, cfg: &TrainerConfig) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best = f64::MIN;
    let mut since_best = 0usize;
    let mut train_seconds = 0.0;
    let mut final_loss = 0.0;
    let mut curve = Vec::new();
    let mut epochs_run = 0;
    let telemetry = imcat_obs::enabled();
    for epoch in 1..=cfg.max_epochs {
        let t0 = Instant::now();
        let stats = model.train_epoch(&mut rng);
        let epoch_seconds = t0.elapsed().as_secs_f64();
        train_seconds += epoch_seconds;
        final_loss = stats.loss;
        epochs_run = epoch;
        if telemetry {
            if !stats.loss.is_finite() {
                imcat_obs::counter_add("guard.nonfinite_loss", 1);
            }
            imcat_obs::emit(
                "epoch",
                vec![
                    ("epoch", imcat_obs::Json::Num(epoch as f64)),
                    ("loss", imcat_obs::Json::Num(stats.loss as f64)),
                    ("batches", imcat_obs::Json::Num(stats.batches as f64)),
                    ("seconds", imcat_obs::Json::Num(epoch_seconds)),
                ],
            );
        }
        if epoch % cfg.eval_every == 0 {
            let recall = validation_recall(model, data, cfg.eval_at);
            curve.push((epoch, recall));
            if telemetry {
                imcat_obs::gauge_set("eval.val_recall", recall);
                imcat_obs::emit(
                    "eval",
                    vec![
                        ("epoch", imcat_obs::Json::Num(epoch as f64)),
                        ("recall", imcat_obs::Json::Num(recall)),
                        ("best", imcat_obs::Json::Num(best.max(recall).max(0.0))),
                    ],
                );
            }
            if recall > best {
                best = recall;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    if telemetry {
                        imcat_obs::emit(
                            "early_stop",
                            vec![
                                ("epoch", imcat_obs::Json::Num(epoch as f64)),
                                ("best_recall", imcat_obs::Json::Num(best.max(0.0))),
                            ],
                        );
                    }
                    break;
                }
            }
        }
    }
    TrainReport {
        model: model.name(),
        epochs_run,
        best_val_recall: best.max(0.0),
        final_loss,
        train_seconds,
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcat_models::test_util::tiny_split;
    use imcat_models::{Bprmf, TrainConfig};

    #[test]
    fn trainer_runs_and_reports() {
        let data = tiny_split(301);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let cfg =
            TrainerConfig { max_epochs: 20, eval_every: 5, patience: 2, ..Default::default() };
        let report = train(&mut model, &data, &cfg);
        assert_eq!(report.model, "BPRMF");
        assert!(report.epochs_run >= 5);
        assert!(report.best_val_recall > 0.0);
        assert!(report.train_seconds > 0.0);
        assert!(!report.curve.is_empty());
    }

    #[test]
    fn early_stopping_triggers() {
        let data = tiny_split(302);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        // Patience 1 with eval every epoch: stops quickly once flat.
        let cfg =
            TrainerConfig { max_epochs: 200, eval_every: 1, patience: 1, ..Default::default() };
        let report = train(&mut model, &data, &cfg);
        assert!(report.epochs_run < 200, "early stopping never fired");
    }

    #[test]
    fn validation_recall_in_unit_range() {
        let data = tiny_split(303);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Bprmf::new(&data, TrainConfig::default(), &mut rng);
        let r = validation_recall(&model, &data, 20);
        assert!((0.0..=1.0).contains(&r));
    }
}
