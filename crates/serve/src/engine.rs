//! The serving engine: frozen-artifact top-K retrieval with an LRU cache,
//! request batching, and latency accounting.
//!
//! ## Parity contract
//!
//! A `recommend(user, k)` answer is bit-identical to what the offline
//! evaluator would rank for that user: scores are the same ascending-index
//! dot products `imcat_tensor::Tensor::matmul_nt` produces, and the top-K
//! selection is the evaluator's own `imcat_eval::top_n_masked_with` with the
//! artifact's training-item mask. The single-request path shards the item
//! axis over the [`imcat_par`] pool; each item's dot product is a sequential
//! accumulation, so the result does not depend on `IMCAT_THREADS`.
//!
//! ## ANN retrieval
//!
//! With [`ServeConfig::ann`] set, requests go through an `imcat-ann` probe
//! (whichever backend `AnnConfig::kind` selects — IVF-Flat lists, the HNSW
//! graph, or exhaustive brute force) instead of scoring the whole catalog:
//! only the probed candidates are scanned, candidates are scored with the
//! *same* exact dot products, and the final list is re-ranked through the
//! same `top_n_masked_with` path — any error is pure recall loss, never a
//! wrong score or ordering; `nprobe == nlist` (IVF) and `ef_search == n`
//! (HNSW) are bit-identical to brute force.
//! The engine falls back to brute force (counted as `ann.fallbacks`) for
//! cold users (all-zero embedding, where centroid ranking is meaningless),
//! fully-masked users, and probes too sparse to fill the requested `k`.
//!
//! ## Telemetry
//!
//! Every request mints a trace id through `imcat_obs::trace` — sampled
//! requests (and every batch tick) collect their span breakdown (scoring,
//! ANN probe, pool dispatch) into the live trace store served at
//! `/trace/<id>`; unsampled requests still surface as span-less exemplars
//! when they exceed the slow threshold. Hot-path counters
//! (`serve.requests`, `serve.cache.hits`/`misses`, `serve.ticks`) and the
//! latency histograms go through pre-interned [`imcat_obs::Counter`] /
//! [`imcat_obs::Hist`] handles so the per-request overhead stays in the
//! tens of nanoseconds.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use imcat_ann::{AnnConfig, AnnIndex, AnnKind, IvfIndex, ProbeScratch, DEFAULT_BUILD_SEED};
use imcat_ckpt::{Artifact, Checkpoint};
use imcat_eval::{top_n_masked_with, TopKScratch};
use imcat_obs::Histogram;

use crate::cache::{CacheKey, LruCache};
use crate::foldin::{fold_embedding, FoldOptions};
use crate::ingest::{append_row, mask_insert, Interaction, StreamEvent};
use crate::rebuild::{self, RebuildTask};

static OBS_REQUESTS: imcat_obs::Counter = imcat_obs::Counter::new("serve.requests");
static OBS_REQUEST_SECONDS: imcat_obs::Hist = imcat_obs::Hist::new("serve.request.seconds");
static OBS_TICKS: imcat_obs::Counter = imcat_obs::Counter::new("serve.ticks");
static OBS_TICK_SECONDS: imcat_obs::Hist = imcat_obs::Hist::new("serve.tick.seconds");
static OBS_CACHE_HITS: imcat_obs::Counter = imcat_obs::Counter::new("serve.cache.hits");
static OBS_CACHE_MISSES: imcat_obs::Counter = imcat_obs::Counter::new("serve.cache.misses");
static OBS_REJECTS: imcat_obs::Counter = imcat_obs::Counter::new("serve.rejects");
static OBS_INGESTS: imcat_obs::Counter = imcat_obs::Counter::new("ingest.events");

/// A request the engine refuses to answer — *never* by panicking.
///
/// The serving paths used to `assert!` on malformed requests, which is fine
/// for an in-process library and fatal for a network worker: one stale or
/// malicious `(user, k)` pair mid-batch would take the whole process down.
/// Every request is now validated up front and rejected with a typed error
/// (counted as `serve.rejects`) while the rest of the tick proceeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The requested user id is outside the artifact's user range.
    UserOutOfRange {
        /// The offending user id.
        user: u32,
        /// Number of users the live artifact serves.
        n_users: u32,
    },
    /// The referenced item id is outside the live catalog (ingestion only —
    /// recommendations never name items).
    ItemOutOfRange {
        /// The offending item id.
        item: u32,
        /// Number of items in the live catalog.
        n_items: u32,
    },
    /// `k == 0` requests an empty ranking; rejected so a zero cutoff can
    /// never pollute the cache or divide downstream metrics by zero.
    ZeroK,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range (artifact has {n_users} users)")
            }
            Self::ItemOutOfRange { item, n_items } => {
                write!(f, "item {item} out of range (catalog has {n_items} items)")
            }
            Self::ZeroK => write!(f, "k must be at least 1"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum number of `(user, k)` top-K lists kept hot (0 disables the
    /// cache).
    pub cache_capacity: usize,
    /// Item-axis shard size for the single-request scoring path.
    pub shard_items: usize,
    /// ANN retrieval configuration; `None` serves brute force.
    pub ann: Option<AnnConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { cache_capacity: 1024, shard_items: 1024, ann: None }
    }
}

/// Live ANN retrieval state: the index (whichever [`imcat_ann::AnnKind`]
/// the config selects) plus its reusable probe buffers.
struct AnnState {
    cfg: AnnConfig,
    index: Box<dyn AnnIndex>,
    scratch: ProbeScratch,
}

impl AnnState {
    fn build(artifact: &Artifact, cfg: AnnConfig) -> Self {
        let index = cfg.build_index(&artifact.item_emb, DEFAULT_BUILD_SEED);
        Self { cfg, index, scratch: ProbeScratch::default() }
    }
}

/// Which ANN backend a live engine is serving and the parameters its
/// configuration resolves to for the current catalog — the operator-facing
/// answer to "what index is this shard actually running?". Fields that do
/// not apply to the active kind are zero/false (e.g. `nlist` under HNSW).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnDescriptor {
    /// Backend name as `IMCAT_ANN_KIND` spells it: `ivf`, `brute`, `hnsw`.
    pub kind: &'static str,
    /// Catalog size the index currently covers.
    pub n_items: usize,
    /// Resolved inverted-list count (IVF).
    pub nlist: usize,
    /// Resolved probed-list count (IVF).
    pub nprobe: usize,
    /// Resolved degree bound (HNSW).
    pub m: usize,
    /// Resolved construction beam width (HNSW).
    pub ef_construction: usize,
    /// Resolved search beam width (HNSW).
    pub ef_search: usize,
    /// Whether the lists carry int8 codes (IVF).
    pub quantized: bool,
}

/// One ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Item id.
    pub item: u32,
    /// Dot-product relevance score.
    pub score: f32,
}

/// Aggregate serving statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests answered (cache hits included).
    pub served: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Median request latency in seconds (bucket upper bound).
    pub p50_seconds: f64,
    /// 95th-percentile request latency in seconds.
    pub p95_seconds: f64,
    /// 99th-percentile request latency in seconds.
    pub p99_seconds: f64,
    /// Mean request latency in seconds.
    pub mean_seconds: f64,
    /// Total time spent answering requests (batched requests all account
    /// the full tick they completed in).
    pub busy_seconds: f64,
}

/// Top-K retrieval engine over one [`Artifact`] generation, mutable at the
/// edges: streamed interactions, cold-entity registration, fold-in, and a
/// background full rebuild that swaps the next generation in atomically.
///
/// ## Streaming state machine
///
/// Each generation starts from a *base* artifact (what `new`/`load`/
/// `reload`/`commit_rebuild` installed). Mutations accumulate in an
/// arrival-ordered [`StreamEvent`] log and are applied live: masks update
/// immediately, embeddings fold in at [`Engine::fold_pending`] ticks. The
/// invariant that keeps ANN certified-skip sound is **items fold once**:
/// the index covers exactly the items finalized into the item matrix
/// (`frozen_items`); a registered item's embedding is written and inserted
/// into the index at its first fold tick and never touched again until the
/// next generation. Users are not indexed, so they refold freely at every
/// tick as their evidence grows.
///
/// The log is canonical: `rebuild_artifact(base, log)` run offline is
/// bit-identical to the artifact the background rebuild swaps in.
pub struct Engine {
    artifact: Artifact,
    cfg: ServeConfig,
    cache: LruCache,
    scratch: TopKScratch,
    ann: Option<AnnState>,
    latency: Histogram,
    served: u64,
    /// The generation's base artifact, cloned lazily before the first
    /// mutation (`None` while the generation is pristine).
    base: Option<Artifact>,
    /// Arrival-ordered mutation log since `base`.
    log: Vec<StreamEvent>,
    /// Items `0..frozen_items` have final embeddings and are covered by the
    /// ANN index; items past it are registered but still cold (zero row,
    /// unreachable through a probe until the next fold tick).
    frozen_items: usize,
    fold: FoldOptions,
    generation: u64,
}

impl Engine {
    /// Builds an engine over a validated artifact. When [`ServeConfig::ann`]
    /// is set the index is built here (deterministically, from the item
    /// embeddings alone).
    pub fn new(artifact: Artifact, cfg: ServeConfig) -> io::Result<Self> {
        artifact.validate()?;
        let cache = LruCache::new(cfg.cache_capacity);
        let ann = cfg.ann.map(|c| AnnState::build(&artifact, c));
        let frozen_items = artifact.n_items();
        Ok(Self {
            artifact,
            cfg,
            cache,
            scratch: TopKScratch::default(),
            ann,
            latency: Histogram::default(),
            served: 0,
            base: None,
            log: Vec::new(),
            frozen_items,
            fold: FoldOptions::from_env(),
            generation: 0,
        })
    }

    /// Loads an artifact from disk (with the container's `.prev` fallback)
    /// and builds an engine over it.
    ///
    /// With [`ServeConfig::ann`] set, the engine reuses the `ann.*` index
    /// sections persisted in the same container when they validate and match
    /// the requested configuration; otherwise it rebuilds the index and
    /// persists it back lazily (atomic save, `.prev` rotation preserved), so
    /// the next load is instant. A corrupt or stale persisted index is
    /// counted (`ann.index.rejected`) and rebuilt — it can never poison the
    /// engine. A failed lazy persist is non-fatal: the engine still serves
    /// from the freshly built in-memory index.
    pub fn load(path: impl AsRef<Path>, cfg: ServeConfig) -> io::Result<Self> {
        let Some(ann_cfg) = cfg.ann else {
            return Self::new(Artifact::load(&path)?, cfg);
        };
        let mut ck = Checkpoint::load(&path)?;
        let artifact = Artifact::from_checkpoint(&ck)?;
        artifact.validate()?;
        let loaded = match ann_cfg.load_index(&ck) {
            Ok(idx) => idx.filter(|idx| {
                idx.matches(&ann_cfg, artifact.n_items(), artifact.dim(), DEFAULT_BUILD_SEED)
            }),
            Err(_) => {
                if imcat_obs::enabled() {
                    imcat_obs::counter_add("ann.index.rejected", 1);
                }
                None
            }
        };
        let state = match loaded {
            Some(index) => AnnState { cfg: ann_cfg, index, scratch: ProbeScratch::default() },
            None => {
                if imcat_obs::enabled() {
                    imcat_obs::counter_add("ann.index.rebuilds", 1);
                }
                let state = AnnState::build(&artifact, ann_cfg);
                // Persist the fresh index back next to the artifact it was
                // built from: under the committed generation's prefix when
                // the container is generation-versioned, bare otherwise.
                let mut staged = Checkpoint::new();
                state.index.save_sections(&mut staged);
                match ck.generation().ok().flatten() {
                    Some(gen) => ck.stage_generation(gen, &staged),
                    None => {
                        let names: Vec<String> = staged.section_names().map(String::from).collect();
                        for name in names {
                            let bytes = staged.require(&name).expect("staged section").to_vec();
                            ck.insert(&name, bytes);
                        }
                    }
                }
                if ck.save(&path).is_err() && imcat_obs::enabled() {
                    imcat_obs::counter_add("ann.index.persist_failed", 1);
                }
                state
            }
        };
        let mut engine = Self::new(artifact, ServeConfig { ann: None, ..cfg.clone() })?;
        engine.cfg = cfg;
        engine.ann = Some(state);
        Ok(engine)
    }

    /// The live IVF index, when ANN retrieval is active *and* backed by
    /// IVF-Flat (`None` under [`imcat_ann::AnnKind::Brute`]).
    pub fn ann_index(&self) -> Option<&IvfIndex> {
        self.ann.as_ref().and_then(|s| s.index.as_ivf())
    }

    /// The live ANN backend behind the [`AnnIndex`] trait, whatever its
    /// kind.
    pub fn ann_backend(&self) -> Option<&dyn AnnIndex> {
        self.ann.as_ref().map(|s| s.index.as_ref())
    }

    /// Operator-facing description of the live ANN backend: its kind plus
    /// the build/probe parameters the configuration resolves to for the
    /// current catalog. `None` when serving brute force without an index.
    /// Served per shard by the front-end's `/stats` route.
    pub fn ann_descriptor(&self) -> Option<AnnDescriptor> {
        let state = self.ann.as_ref()?;
        let kind = state.index.kind();
        let n_items = state.index.n_items();
        let mut d = AnnDescriptor {
            kind: kind.name(),
            n_items,
            nlist: 0,
            nprobe: 0,
            m: 0,
            ef_construction: 0,
            ef_search: 0,
            quantized: false,
        };
        match kind {
            AnnKind::Ivf => {
                d.nlist = state.cfg.resolved_nlist(n_items);
                d.nprobe = state.cfg.resolved_nprobe(n_items);
                d.quantized = state.cfg.quantized;
            }
            AnnKind::Hnsw => {
                d.m = state.cfg.resolved_m(n_items);
                d.ef_construction = state.cfg.resolved_ef_construction(n_items);
                d.ef_search = state.cfg.resolved_ef_search(n_items);
            }
            AnnKind::Brute => {}
        }
        Some(d)
    }

    /// The artifact currently being served.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Monotonic generation counter: bumps on every swap — `reload`,
    /// `set_ann`, `commit_rebuild`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The mutation log accumulated since this generation's base artifact,
    /// in arrival order.
    pub fn stream_log(&self) -> &[StreamEvent] {
        &self.log
    }

    /// The fold-in options live ingestion uses (defaults read from the
    /// `IMCAT_INGEST_FOLD_*` knobs at construction).
    pub fn fold_options(&self) -> FoldOptions {
        self.fold
    }

    /// Overrides the fold-in options. Affects folds from the next tick on;
    /// already-frozen embeddings stay as they are (and the log keeps the
    /// rebuild canonical under whatever options it is replayed with).
    pub fn set_fold_options(&mut self, fold: FoldOptions) {
        self.fold = fold;
    }

    /// Every mutation of the serving state funnels through here: new
    /// artifact and/or ANN state in, cache out, generation bumped, one
    /// counter per caller. Replacing the artifact resets the streaming
    /// state — the incoming artifact *is* the next generation's base and
    /// the old log is consumed (rebuild) or superseded (reload).
    fn swap_generation(
        &mut self,
        artifact: Option<Artifact>,
        ann: Option<AnnState>,
        counter: &'static str,
    ) -> io::Result<()> {
        if let Some(artifact) = artifact {
            artifact.validate()?;
            self.frozen_items = artifact.n_items();
            self.artifact = artifact;
            self.base = None;
            self.log.clear();
        }
        self.ann = ann;
        self.cache.clear();
        self.generation += 1;
        if imcat_obs::enabled() {
            imcat_obs::counter_add(counter, 1);
            imcat_obs::counter_add("serve.generation.swaps", 1);
        }
        Ok(())
    }

    /// Swaps in a new artifact. The cache is cleared so no stale list from
    /// the previous generation can ever be served, and the ANN index (if
    /// active) is rebuilt over the new item embeddings before the swap; on a
    /// validation error the old artifact, index, cache, and stream log all
    /// stay live.
    pub fn reload(&mut self, artifact: Artifact) -> io::Result<()> {
        artifact.validate()?;
        let ann = self.cfg.ann.map(|c| AnnState::build(&artifact, c));
        self.swap_generation(Some(artifact), ann, "serve.reloads")
    }

    /// Switches ANN retrieval on, off, or to a different configuration,
    /// rebuilding the index as needed. Pending cold entities are folded
    /// first so the fresh index covers exactly the finalized catalog; the
    /// result cache is cleared exactly like [`Engine::reload`] does.
    pub fn set_ann(&mut self, ann: Option<AnnConfig>) {
        self.fold_pending();
        self.cfg.ann = ann;
        let state = ann.map(|c| AnnState::build(&self.artifact, c));
        let _ = self.swap_generation(None, state, "serve.ann_swaps");
    }

    /// Clones the pristine artifact into `base` before the first mutation
    /// of a generation, so the log replays over exactly what the generation
    /// started from.
    fn ensure_base(&mut self) {
        if self.base.is_none() {
            self.base = Some(self.artifact.clone());
        }
    }

    /// Registers a cold user and returns their id (the next dense user id).
    /// The new row is all-zero until a fold tick gives it evidence-backed
    /// coordinates; recommendations for it fall back to brute force
    /// meanwhile (cold-user fallback).
    pub fn register_user(&mut self) -> u32 {
        self.ensure_base();
        let dim = self.artifact.dim();
        let id = self.artifact.n_users() as u32;
        self.artifact.user_emb = append_row(&self.artifact.user_emb, &vec![0.0; dim]);
        self.artifact.masks.push(Vec::new());
        self.log.push(StreamEvent::RegisterUser);
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ingest.users", 1);
        }
        id
    }

    /// Registers a cold item and returns its id (the next dense item id).
    /// The item scores zero for everyone until its first fold tick freezes
    /// an embedding and inserts it into the ANN index; the cache is cleared
    /// because cached lists ranked a smaller catalog.
    pub fn register_item(&mut self) -> u32 {
        self.ensure_base();
        let dim = self.artifact.dim();
        let id = self.artifact.n_items() as u32;
        self.artifact.item_emb = append_row(&self.artifact.item_emb, &vec![0.0; dim]);
        self.log.push(StreamEvent::RegisterItem);
        self.cache.clear();
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ingest.items", 1);
        }
        id
    }

    /// Ingests one interaction: validates both ids against the live ranges,
    /// updates the user's mask immediately (the item disappears from their
    /// recommendations *now*), appends the event to the log as fold-in
    /// evidence, and invalidates only that user's cached lists. Embeddings
    /// move at the next [`Engine::fold_pending`] tick, off the request path.
    pub fn ingest(&mut self, x: Interaction) -> Result<(), ServeError> {
        let n_users = self.artifact.n_users() as u32;
        let n_items = self.artifact.n_items() as u32;
        if x.user >= n_users {
            OBS_REJECTS.add(1);
            return Err(ServeError::UserOutOfRange { user: x.user, n_users });
        }
        if x.item >= n_items {
            OBS_REJECTS.add(1);
            return Err(ServeError::ItemOutOfRange { item: x.item, n_items });
        }
        self.ensure_base();
        mask_insert(&mut self.artifact.masks[x.user as usize], x.item);
        self.log.push(StreamEvent::Interaction(x));
        self.cache.remove_user(x.user);
        OBS_INGESTS.add(1);
        Ok(())
    }

    /// Ingests a batch, one result per interaction in order; a rejected
    /// interaction never aborts the rest of the batch.
    pub fn ingest_batch(&mut self, xs: &[Interaction]) -> Vec<Result<(), ServeError>> {
        xs.iter().map(|&x| self.ingest(x)).collect()
    }

    /// One fold tick: finalizes every registered-but-cold item (ridge
    /// fold-in from its logged evidence, zero row if it has none), inserts
    /// it into the ANN index, and refolds every post-base user from the
    /// updated item matrix. Items fold **once** — their embeddings and int8
    /// codes stay frozen until the next generation, which is what keeps the
    /// certified-skip bound sound. Users refold every tick (they are not
    /// indexed, so nothing goes stale). Returns the number of embeddings
    /// written.
    pub fn fold_pending(&mut self) -> usize {
        let n_items = self.artifact.n_items();
        if self.log.is_empty() && self.frozen_items == n_items {
            return 0;
        }
        let _sp = imcat_obs::span("serve.fold.seconds");
        let dim = self.artifact.dim();
        let base_users =
            self.base.as_ref().map(|b| b.n_users()).unwrap_or_else(|| self.artifact.n_users());
        // Evidence per cold entity: opposite-side ids in log-arrival order,
        // duplicates kept (a repeated interaction is weighted evidence) —
        // the exact accumulation `rebuild_artifact` replays.
        let mut item_users: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut user_items: HashMap<u32, Vec<u32>> = HashMap::new();
        for ev in &self.log {
            if let StreamEvent::Interaction(x) = *ev {
                if (x.item as usize) >= self.frozen_items {
                    item_users.entry(x.item).or_default().push(x.user);
                }
                if (x.user as usize) >= base_users {
                    user_items.entry(x.user).or_default().push(x.item);
                }
            }
        }
        let mut folds = 0usize;
        let items_changed = n_items > self.frozen_items;
        for id in self.frozen_items..n_items {
            let emb: Vec<f32> = match item_users.get(&(id as u32)) {
                Some(users) => {
                    let art = &self.artifact;
                    let rows: Vec<&[f32]> =
                        users.iter().map(|&u| art.user_emb.row(u as usize)).collect();
                    folds += 1;
                    fold_embedding(&rows, dim, &self.fold)
                }
                None => vec![0.0; dim],
            };
            self.artifact.item_emb.row_mut(id).copy_from_slice(&emb);
            if let Some(state) = self.ann.as_mut() {
                if state.index.insert(id as u32, &emb).is_err() && imcat_obs::enabled() {
                    // A failed insert costs ANN recall for this item, never
                    // correctness: probes simply cannot reach it until the
                    // next full rebuild re-indexes the catalog.
                    imcat_obs::counter_add("ingest.insert_failures", 1);
                }
            }
        }
        self.frozen_items = n_items;
        let mut users: Vec<u32> = user_items.keys().copied().collect();
        users.sort_unstable();
        for u in users {
            let emb = {
                let art = &self.artifact;
                let rows: Vec<&[f32]> =
                    user_items[&u].iter().map(|&i| art.item_emb.row(i as usize)).collect();
                fold_embedding(&rows, dim, &self.fold)
            };
            self.artifact.user_emb.row_mut(u as usize).copy_from_slice(&emb);
            self.cache.remove_user(u);
            folds += 1;
        }
        if items_changed {
            self.cache.clear();
        }
        if imcat_obs::enabled() {
            imcat_obs::counter_add("ingest.folds", folds as u64);
        }
        folds
    }

    /// Spawns a background full rebuild over a snapshot of this
    /// generation's `(base, log)`. The worker replays the log through
    /// [`crate::rebuild_artifact`], builds a fresh index, and — when
    /// `persist` names a container — *stages* the next generation on disk
    /// (atomic save, committed pointer untouched, crash-safe). The engine
    /// keeps serving and ingesting; hand the task back to
    /// [`Engine::commit_rebuild`] when [`RebuildTask::is_finished`].
    pub fn spawn_rebuild(&self, persist: Option<PathBuf>) -> io::Result<RebuildTask> {
        let base = self.base.clone().unwrap_or_else(|| self.artifact.clone());
        rebuild::spawn(base, self.log.clone(), self.fold, self.cfg.ann, persist)
    }

    /// Joins a finished rebuild and swaps the new generation in: the
    /// rebuilt artifact becomes the base, events ingested after the
    /// snapshot are replayed onto it through the live mutation path, and —
    /// when the worker staged the generation on disk — the committed
    /// pointer is flipped with a second atomic save. In-memory swap happens
    /// first: requests between the two steps already serve the new
    /// generation, and a crash before the flip recovers to the old one.
    pub fn commit_rebuild(&mut self, task: RebuildTask) -> io::Result<()> {
        let out = task
            .handle
            .join()
            .map_err(|_| io::Error::new(io::ErrorKind::Other, "rebuild worker panicked"))??;
        let suffix: Vec<StreamEvent> =
            self.log.get(task.snap_len..).map(<[_]>::to_vec).unwrap_or_default();
        let ann = match (self.cfg.ann, out.index) {
            (Some(cfg), Some(index)) => {
                Some(AnnState { cfg, index, scratch: ProbeScratch::default() })
            }
            _ => None,
        };
        self.swap_generation(Some(out.artifact), ann, "serve.rebuild.commits")?;
        // Replay the post-snapshot suffix through the normal live path: the
        // events were valid when first ingested and the rebuilt artifact
        // contains every registration the snapshot saw, so they stay valid.
        for ev in suffix {
            match ev {
                StreamEvent::RegisterUser => {
                    self.register_user();
                }
                StreamEvent::RegisterItem => {
                    self.register_item();
                }
                StreamEvent::Interaction(x) => {
                    let _ = self.ingest(x);
                }
            }
        }
        if let Some((path, gen)) = out.staged {
            let mut ck = Checkpoint::load(&path)?;
            ck.commit_generation(gen);
            ck.save(&path)?;
        }
        Ok(())
    }

    /// Number of users the current artifact can serve.
    pub fn n_users(&self) -> usize {
        self.artifact.n_users()
    }

    /// Catalogue size of the current artifact.
    pub fn n_items(&self) -> usize {
        self.artifact.n_items()
    }

    /// Scores every item for `user`, sharding the item axis over the thread
    /// pool. Element `j` is the same `imcat_simd::dot` kernel `matmul_nt`
    /// runs, so the row is bit-identical to the evaluator's score row at any
    /// thread count.
    fn score_user(&self, user: u32) -> Vec<f32> {
        let u_row = self.artifact.user_emb.row(user as usize);
        let items = &self.artifact.item_emb;
        let mut scores = vec![0.0f32; items.rows()];
        let shard = self.cfg.shard_items.max(1);
        imcat_par::global().parallel_chunks_mut(&mut scores, shard, |ci, slots| {
            for (off, slot) in slots.iter_mut().enumerate() {
                *slot = imcat_simd::dot(u_row, items.row(ci * shard + off));
            }
        });
        scores
    }

    fn top_k(&mut self, user: u32, k: usize, scores: &[f32]) -> Vec<Recommendation> {
        let mask = &self.artifact.masks[user as usize];
        let top = top_n_masked_with(scores, mask, k, &mut self.scratch);
        top.iter().map(|&j| Recommendation { item: j, score: scores[j as usize] }).collect()
    }

    /// ANN path for one request. `None` means "fall back to brute force":
    /// cold user (all-zero embedding — every dot product is 0 and centroid
    /// ranking is meaningless), fully-masked user, or a probe whose unmasked
    /// candidates cannot fill the requested `k`.
    fn ann_recommend(&mut self, user: u32, k: usize) -> Option<Vec<Recommendation>> {
        let state = self.ann.as_mut()?;
        let n_items = self.artifact.item_emb.rows();
        let mask = &self.artifact.masks[user as usize];
        if mask.len() >= n_items {
            return None;
        }
        let u_row = self.artifact.user_emb.row(user as usize);
        if u_row.iter().all(|&x| x == 0.0) {
            return None;
        }
        // `nprobe` for the list backends, `ef_search` for the graph — the
        // probe-width knob of whichever backend is live.
        let width = state.cfg.resolved_probe_width(n_items);
        state.index.probe(u_row, &self.artifact.item_emb, mask, k, width, &mut state.scratch);
        let unmasked = state.scratch.candidates().len() - state.scratch.mask().len();
        if unmasked < k.min(n_items - mask.len()) {
            return None;
        }
        // Re-rank the compact candidate set through the evaluator's own
        // selection path — identical scores, identical tie discipline.
        let top =
            top_n_masked_with(state.scratch.scores(), state.scratch.mask(), k, &mut self.scratch);
        Some(
            top.iter()
                .map(|&ci| Recommendation {
                    item: state.scratch.candidates()[ci as usize],
                    score: state.scratch.scores()[ci as usize],
                })
                .collect(),
        )
    }

    /// Computes a fresh (uncached) answer: ANN probe when active, brute
    /// force otherwise or as fallback.
    fn compute(&mut self, user: u32, k: usize) -> Vec<Recommendation> {
        if self.ann.is_some() {
            if let Some(out) = self.ann_recommend(user, k) {
                return out;
            }
            if imcat_obs::enabled() {
                imcat_obs::counter_add("ann.fallbacks", 1);
            }
        }
        let _score = imcat_obs::span("serve.score.seconds");
        let scores = self.score_user(user);
        self.top_k(user, k, &scores)
    }

    fn account(&mut self, requests: u64, seconds: f64) {
        self.served += requests;
        for _ in 0..requests {
            self.latency.record(seconds);
        }
        OBS_REQUESTS.add(requests);
        OBS_REQUEST_SECONDS.observe(seconds);
    }

    /// Validates one request against the live artifact. Rejections are
    /// counted (`serve.rejects`) but cost no scoring work and leave no cache
    /// or latency footprint.
    fn validate_request(&self, user: u32, k: usize) -> Result<(), ServeError> {
        let n_users = self.artifact.n_users() as u32;
        let err = if user >= n_users {
            ServeError::UserOutOfRange { user, n_users }
        } else if k == 0 {
            ServeError::ZeroK
        } else {
            return Ok(());
        };
        OBS_REJECTS.add(1);
        Err(err)
    }

    /// Answers one request: the top `k` unseen items for `user`, best first.
    /// A malformed request (out-of-range user, `k == 0`) is rejected with a
    /// typed [`ServeError`] — the engine never panics on request data.
    ///
    /// Mints a per-request trace id; sampled requests collect their span
    /// breakdown into the live trace store (`/trace/<id>`).
    pub fn recommend(&mut self, user: u32, k: usize) -> Result<Vec<Recommendation>, ServeError> {
        self.validate_request(user, k)?;
        let _trace = imcat_obs::trace::request("serve.request", "serve.request.seconds", false);
        let t0 = Instant::now();
        if let Some(cached) = self.cache.get((user, k)) {
            let out = cached.to_vec();
            OBS_CACHE_HITS.add(1);
            self.account(1, t0.elapsed().as_secs_f64());
            return Ok(out);
        }
        OBS_CACHE_MISSES.add(1);
        let out = self.compute(user, k);
        self.cache.put((user, k), out.clone());
        self.account(1, t0.elapsed().as_secs_f64());
        Ok(out)
    }

    /// Answers a tick's worth of concurrent requests. Cache misses are
    /// deduplicated and scored with a *single* `matmul_nt` over the unique
    /// miss users, then ranked per row; results land in the cache before the
    /// tick returns. Output order matches `requests`, and every answer —
    /// including each rejection — is identical to what [`Engine::recommend`]
    /// returns for the same request: a malformed request yields its own
    /// `Err` slot while the rest of the tick is answered normally, so one
    /// bad request can never abort a batch or take down a worker.
    pub fn recommend_batch(
        &mut self,
        requests: &[(u32, usize)],
    ) -> Vec<Result<Vec<Recommendation>, ServeError>> {
        // Ticks are rare and information-dense, so their traces are always
        // sampled: the tick's matmul/probe/dispatch spans all attach.
        let _trace = imcat_obs::trace::request("serve.tick", "serve.tick.seconds", true);
        let t0 = Instant::now();
        type Answer = Result<Vec<Recommendation>, ServeError>;
        let mut outputs: Vec<Option<Answer>> = Vec::with_capacity(requests.len());
        let mut miss_keys: Vec<CacheKey> = Vec::new();
        let mut miss_index: HashMap<CacheKey, usize> = HashMap::new();
        let mut hits = 0u64;
        for &(user, k) in requests {
            if let Err(e) = self.validate_request(user, k) {
                outputs.push(Some(Err(e)));
                continue;
            }
            if let Some(cached) = self.cache.get((user, k)) {
                hits += 1;
                outputs.push(Some(Ok(cached.to_vec())));
            } else {
                outputs.push(None);
                if let Entry::Vacant(slot) = miss_index.entry((user, k)) {
                    slot.insert(miss_keys.len());
                    miss_keys.push((user, k));
                }
            }
        }
        if !miss_keys.is_empty() && self.ann.is_some() {
            // ANN path: each unique miss goes through the same probe (or
            // brute fallback) as the single-request path, so batch answers
            // stay bit-identical to [`Engine::recommend`].
            let mut fresh: Vec<Vec<Recommendation>> = Vec::with_capacity(miss_keys.len());
            for &(user, k) in &miss_keys {
                let recs = self.compute(user, k);
                self.cache.put((user, k), recs.clone());
                fresh.push(recs);
            }
            for (slot, &(user, k)) in outputs.iter_mut().zip(requests) {
                if slot.is_none() {
                    *slot = Some(Ok(fresh[miss_index[&(user, k)]].clone()));
                }
            }
        } else if !miss_keys.is_empty() {
            // One scoring matmul for the whole tick: one row per unique miss
            // user (a user requested at two cutoffs shares a row).
            let mut users: Vec<u32> = miss_keys.iter().map(|&(u, _)| u).collect();
            users.sort_unstable();
            users.dedup();
            let row_of: HashMap<u32, usize> =
                users.iter().enumerate().map(|(i, &u)| (u, i)).collect();
            let scores = self.artifact.user_emb.matmul_nt_rows(&users, &self.artifact.item_emb);
            let mut fresh: Vec<Vec<Recommendation>> = Vec::with_capacity(miss_keys.len());
            for &(user, k) in &miss_keys {
                let row = scores.row(row_of[&user]);
                let recs = self.top_k(user, k, row);
                self.cache.put((user, k), recs.clone());
                fresh.push(recs);
            }
            for (slot, &(user, k)) in outputs.iter_mut().zip(requests) {
                if slot.is_none() {
                    *slot = Some(Ok(fresh[miss_index[&(user, k)]].clone()));
                }
            }
        }
        // Defensive completion: a slot can only still be empty if the fill
        // passes above missed a valid request (a bug, not request data). It
        // used to `expect` here — aborting the whole worker mid-tick — but a
        // partially-filled tick is recoverable: answer the straggler through
        // the single-request compute path and count the repair so the
        // invariant violation stays visible in telemetry.
        for i in 0..outputs.len() {
            if outputs[i].is_none() {
                if imcat_obs::enabled() {
                    imcat_obs::counter_add("serve.tick.repairs", 1);
                }
                let (user, k) = requests[i];
                let recs = self.compute(user, k);
                self.cache.put((user, k), recs.clone());
                outputs[i] = Some(Ok(recs));
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        self.account(requests.len() as u64, dt);
        OBS_CACHE_HITS.add(hits);
        OBS_CACHE_MISSES.add(requests.len() as u64 - hits);
        OBS_TICKS.add(1);
        OBS_TICK_SECONDS.observe(dt);
        // Every slot is Some after the repair pass; the fallback keeps this
        // path abort-free by construction rather than by `expect`.
        outputs.into_iter().map(|o| o.unwrap_or(Err(ServeError::ZeroK))).collect()
    }

    /// Lifetime serving statistics (latency quantiles are log-bucket upper
    /// bounds, matching `imcat-obs` histograms).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.served,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            p50_seconds: self.latency.quantile(0.50),
            p95_seconds: self.latency.quantile(0.95),
            p99_seconds: self.latency.quantile(0.99),
            mean_seconds: self.latency.mean(),
            busy_seconds: self.latency.sum,
        }
    }

    /// Number of currently cached top-K lists.
    pub fn cached_lists(&self) -> usize {
        self.cache.len()
    }
}
