//! Prometheus-style text exposition (format 0.0.4) rendered from a registry
//! [`Snapshot`], plus a JSON snapshot document for programmatic scrapes.
//!
//! Metric names are sanitised (`.` and other non-identifier characters
//! become `_`) and prefixed `imcat_`. Cumulative histograms render as
//! standard `_bucket{le=...}`/`_sum`/`_count` families; sliding-window
//! percentiles render as a gauge family `<name>_window{quantile=...}` so
//! dashboards can plot live p50/p95/p99 without server-side rate windows.
//! Non-finite values are skipped, so the output never contains NaN.

use std::fmt::Write as _;

use crate::{trace, Histogram, Json, Snapshot, BUCKET_BOUNDS};

/// Sanitises a metric name into a Prometheus identifier with the `imcat_`
/// prefix.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("imcat_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_sample(out: &mut String, name: &str, labels: &str, v: f64) {
    if !v.is_finite() {
        return;
    }
    let _ = writeln!(out, "{name}{labels} {v}");
}

fn push_hist(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
        cum += h.buckets[i];
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
    }
    cum += h.buckets[BUCKET_BOUNDS.len()];
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
    push_sample(out, &format!("{name}_sum"), "", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders the full exposition document for `snap`.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        if !v.is_finite() {
            continue;
        }
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        push_sample(&mut out, &n, "", *v);
    }
    for (name, h) in &snap.hists {
        push_hist(&mut out, &metric_name(name), h);
    }
    for (name, w) in &snap.windows {
        let n = format!("{}_window", metric_name(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            if let Some(v) = w.try_quantile(q) {
                push_sample(&mut out, &n, &format!("{{quantile=\"{label}\"}}"), v);
            }
        }
        let _ = writeln!(out, "# TYPE {n}_count gauge");
        let _ = writeln!(out, "{n}_count {}", w.count);
    }
    let (stored, total, slow) = trace::stats();
    for (n, v) in [
        ("imcat_obs_uptime_seconds", crate::now_seconds()),
        ("imcat_obs_traces_stored", stored as f64),
        ("imcat_obs_traces_total", total as f64),
        ("imcat_obs_traces_slow", slow as f64),
    ] {
        let _ = writeln!(out, "# TYPE {n} gauge");
        push_sample(&mut out, n, "", v);
    }
    out
}

/// Renders `snap` as one JSON document (served at `/snapshot`).
pub fn render_snapshot_json(snap: &Snapshot) -> Json {
    let hist_obj = |h: &Histogram| {
        Json::obj(vec![
            ("count", Json::Num(h.count as f64)),
            ("sum", Json::Num(h.sum)),
            ("mean", Json::Num(h.mean())),
            ("min", Json::Num(if h.count == 0 { 0.0 } else { h.min })),
            ("max", Json::Num(if h.count == 0 { 0.0 } else { h.max })),
            ("p50", Json::Num(h.quantile(0.5))),
            ("p95", Json::Num(h.quantile(0.95))),
            ("p99", Json::Num(h.quantile(0.99))),
        ])
    };
    let (stored, total, slow) = trace::stats();
    Json::obj(vec![
        ("t", Json::Num(crate::now_seconds())),
        (
            "counters",
            Json::Obj(
                snap.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(snap.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
        ),
        ("hists", Json::Obj(snap.hists.iter().map(|(k, h)| (k.clone(), hist_obj(h))).collect())),
        (
            "windows",
            Json::Obj(snap.windows.iter().map(|(k, h)| (k.clone(), hist_obj(h))).collect()),
        ),
        (
            "traces",
            Json::obj(vec![
                ("stored", Json::Num(stored as f64)),
                ("total", Json::Num(total as f64)),
                ("slow", Json::Num(slow as f64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_no_nan_and_monotone_buckets() {
        let _g = crate::exclusive(true);
        crate::counter_add("serve.requests", 7);
        crate::gauge_set("eval.val_recall", f64::NAN); // must be skipped
        crate::observe("serve.request.seconds", 0.002);
        crate::observe("serve.request.seconds", 0.004);
        let text = render_prometheus(&crate::snapshot());
        assert!(!text.contains("NaN"), "exposition contains NaN:\n{text}");
        assert!(text.contains("# TYPE imcat_serve_requests counter"));
        assert!(text.contains("imcat_serve_requests 7"));
        assert!(!text.contains("imcat_eval_val_recall "));
        assert!(text.contains("imcat_serve_request_seconds_count 2"));
        assert!(text.contains("imcat_serve_request_seconds_window{quantile=\"0.99\"}"));
        // Cumulative bucket counts must be monotone non-decreasing.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("imcat_serve_request_seconds_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "bucket counts not monotone:\n{text}");
            prev = v;
        }
        assert_eq!(prev, 2);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let _g = crate::exclusive(true);
        crate::counter_add("serve.requests", 3);
        crate::observe("serve.request.seconds", 0.001);
        let doc = render_snapshot_json(&crate::snapshot());
        let parsed = Json::parse(&doc.render()).expect("snapshot JSON parses");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("serve.requests")).and_then(Json::as_f64),
            Some(3.0)
        );
        assert!(parsed.get("hists").and_then(|h| h.get("serve.request.seconds")).is_some());
    }
}
