//! KGIN baseline (Wang et al. 2021): learning user intents behind
//! interactions as attentive combinations of KG relations.
//!
//! In the tag-enhanced setting each tag plays the role of a KG relation.
//! KGIN's defining mechanisms preserved here:
//!
//! 1. `P` latent intents, each an attention-weighted combination of relation
//!    (tag) embeddings: `e_p = softmax(w_p) · T`.
//! 2. Intent-aware relational aggregation: items absorb their relation (tag)
//!    context, the joint user–item graph is propagated (relational path
//!    aggregation), and each user's representation receives a residual
//!    modulated by her personal intent attention `β(u, p) = softmax(u · e_p)`.
//! 3. An independence regularizer keeping intents disentangled (we use the
//!    pairwise squared-cosine penalty, one of the options in the paper).

use std::rc::Rc;

use imcat_data::{BprSampler, SplitDataset};
use imcat_tensor::{xavier_uniform, Csr, ParamId, Tape, Tensor, Var};
use rand::rngs::StdRng;

use imcat_graph::joint_normalized_adjacency;

use crate::common::{bpr_loss, EmbeddingCore, EpochStats, RecModel, TrainConfig};

/// Number of latent intents (the paper's KGIN uses 4 by default).
const INTENTS: usize = 4;

/// Knowledge graph intent network.
pub struct Kgin {
    core: EmbeddingCore,
    cfg: TrainConfig,
    sampler: BprSampler,
    tag_emb: ParamId,
    intent_logits: ParamId,
    /// Mean aggregation item → tags.
    it_agg: Rc<Csr>,
    it_agg_t: Rc<Csr>,
    /// Symmetric normalized joint user–item adjacency for relational
    /// propagation.
    adj: Rc<Csr>,
    /// Weight of the intent-independence penalty.
    pub ind_weight: f32,
}

impl Kgin {
    /// Builds the model on a training split.
    pub fn new(data: &SplitDataset, cfg: TrainConfig, rng: &mut StdRng) -> Self {
        let mut core = EmbeddingCore::new(data.n_users(), data.n_items(), &cfg, rng);
        let tag_emb = core.store.add("tag_emb", xavier_uniform(data.n_tags(), cfg.dim, rng));
        let intent_logits =
            core.store.add("intent_logits", xavier_uniform(INTENTS, data.n_tags(), rng));
        core.rebuild_optimizer(&cfg);
        let it = data.item_tag.row_mean_aggregator();
        let it_t = it.transpose();
        let adj = joint_normalized_adjacency(&data.train);
        Self {
            core,
            cfg,
            sampler: BprSampler::for_user_items(data),
            tag_emb,
            intent_logits,
            it_agg: Rc::new(it),
            it_agg_t: Rc::new(it_t),
            adj: Rc::new(adj),
            ind_weight: 0.1,
        }
    }

    /// Intent embeddings `[P, d]` from relation attention.
    fn intents(&self, tape: &mut Tape) -> Var {
        let logits = tape.leaf(&self.core.store, self.intent_logits);
        let att = tape.softmax_rows(logits);
        let tags = tape.leaf(&self.core.store, self.tag_emb);
        tape.matmul(att, tags)
    }

    /// Full resolved user and item representations on the tape: items absorb
    /// their relation (tag) context, the joint graph is propagated
    /// LightGCN-style (the paper's relational path aggregation), and user
    /// representations receive an intent-modulated residual.
    fn represent(&self, tape: &mut Tape) -> (Var, Var) {
        let u0 = tape.leaf(&self.core.store, self.core.user_emb);
        let v0 = tape.leaf(&self.core.store, self.core.item_emb);
        let t0 = tape.leaf(&self.core.store, self.tag_emb);
        // Items absorb relation (tag) context before propagation.
        let v_ctx = tape.spmm(&self.it_agg, &self.it_agg_t, t0);
        let v_sum = tape.add(v0, v_ctx);
        let v_init = tape.scale(v_sum, 0.5);
        // Relational path aggregation over the joint graph.
        let x0 = tape.concat_rows(&[u0, v_init]);
        let nodes = crate::common::propagate_mean(tape, &self.adj, x0, self.cfg.gnn_layers);
        let n_users = self.core.store.value(self.core.user_emb).rows();
        let n_items = self.core.store.value(self.core.item_emb).rows();
        let user_ids: Vec<u32> = (0..n_users as u32).collect();
        let item_ids: Vec<u32> = (n_users as u32..(n_users + n_items) as u32).collect();
        let u_prop = tape.gather_rows(nodes, &user_ids);
        let v = tape.gather_rows(nodes, &item_ids);
        // Intent-modulated residual on the user side.
        let e_p = self.intents(tape); // [P, d]
        let beta_logits = tape.matmul_nt(u_prop, e_p); // [U, P]
        let beta = tape.softmax_rows(beta_logits);
        let mixed_intent = tape.matmul(beta, e_p); // [U, d]
        let modulated = tape.mul(mixed_intent, u_prop);
        let modulated = tape.scale(modulated, 0.5);
        let u = tape.add(u_prop, modulated);
        (u, v)
    }

    /// Pairwise squared-cosine independence penalty over intents.
    fn independence(&self, tape: &mut Tape) -> Var {
        let e_p = self.intents(tape);
        let e_n = tape.l2_normalize_rows(e_p, 1e-12);
        let gram = tape.matmul_nt(e_n, e_n); // [P, P]
        let sq = tape.mul(gram, gram);
        let total = tape.sum_all(sq);
        // Subtract the diagonal (always P) and average the off-diagonal mass.
        let p = INTENTS as f32;
        let shifted = tape.add_scalar(total, -p);
        tape.scale(shifted, 1.0 / (p * (p - 1.0)))
    }

    fn step(&mut self, rng: &mut StdRng) -> f32 {
        let batch = self.sampler.sample(self.cfg.batch_size, rng);
        let mut tape = Tape::new();
        let (u_all, v_all) = self.represent(&mut tape);
        let u = tape.gather_rows(u_all, &batch.anchors);
        let vp = tape.gather_rows(v_all, &batch.positives);
        let vn = tape.gather_rows(v_all, &batch.negatives);
        let sp = tape.rowwise_dot(u, vp);
        let sn = tape.rowwise_dot(u, vn);
        let cf = bpr_loss(&mut tape, sp, sn);
        let ind = self.independence(&mut tape);
        let ind = tape.scale(ind, self.ind_weight);
        let loss = tape.add(cf, ind);
        let value = tape.value(loss).item();
        tape.backward(loss, &mut self.core.store);
        self.core.adam.step(&mut self.core.store);
        value
    }

    /// Gradient-free resolved embeddings for evaluation.
    fn represent_tensor(&self) -> (Tensor, Tensor) {
        let store = &self.core.store;
        let u0 = store.value(self.core.user_emb);
        let v0 = store.value(self.core.item_emb);
        let t0 = store.value(self.tag_emb);
        let mut v_init = self.it_agg.spmm(t0);
        v_init.add_assign(v0);
        let v_init = v_init.map(|x| x * 0.5);
        // Stack [users; items] and propagate.
        let n_users = u0.rows();
        let n_items = v_init.rows();
        let d = u0.cols();
        let mut x0 = Tensor::zeros(n_users + n_items, d);
        for r in 0..n_users {
            x0.row_mut(r).copy_from_slice(u0.row(r));
        }
        for r in 0..n_items {
            x0.row_mut(n_users + r).copy_from_slice(v_init.row(r));
        }
        let nodes = crate::common::propagate_mean_tensor(&self.adj, &x0, self.cfg.gnn_layers);
        let mut u_prop = Tensor::zeros(n_users, d);
        let mut v = Tensor::zeros(n_items, d);
        for r in 0..n_users {
            u_prop.row_mut(r).copy_from_slice(nodes.row(r));
        }
        for r in 0..n_items {
            v.row_mut(r).copy_from_slice(nodes.row(n_users + r));
        }
        // Intents.
        let logits = store.value(self.intent_logits);
        let mut att = logits.clone();
        for r in 0..att.rows() {
            let row = att.row_mut(r);
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &x| a.max(x));
            let mut s = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                s += *x;
            }
            for x in row.iter_mut() {
                *x /= s;
            }
        }
        let e_p = att.matmul(t0);
        let mut beta = u_prop.matmul_nt(&e_p);
        for r in 0..beta.rows() {
            let row = beta.row_mut(r);
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &x| a.max(x));
            let mut s = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                s += *x;
            }
            for x in row.iter_mut() {
                *x /= s;
            }
        }
        let mixed = beta.matmul(&e_p);
        let mut u = Tensor::zeros(n_users, d);
        for r in 0..u.rows() {
            for ((o, &p), &m) in u.row_mut(r).iter_mut().zip(u_prop.row(r)).zip(mixed.row(r)) {
                *o = p + 0.5 * m * p;
            }
        }
        (u, v)
    }
}

impl RecModel for Kgin {
    fn name(&self) -> String {
        "KGIN".into()
    }

    fn train_epoch(&mut self, rng: &mut StdRng) -> EpochStats {
        let batches = self.sampler.batches_per_epoch(self.cfg.batch_size);
        let mut total = 0.0;
        for _ in 0..batches {
            total += self.step(rng);
        }
        EpochStats { loss: total / batches as f32, batches }
    }

    fn export_embeddings(&self) -> Option<(Tensor, Tensor)> {
        Some(self.represent_tensor())
    }

    fn num_params(&self) -> usize {
        self.core.store.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tiny_split, training_improves_recall};
    use rand::SeedableRng;

    #[test]
    fn tape_and_tensor_representations_agree() {
        let data = tiny_split(121);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Kgin::new(&data, TrainConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let (u, v) = model.represent(&mut tape);
        let (ut, vt) = model.represent_tensor();
        assert!(tape.value(u).approx_eq(&ut, 1e-4));
        assert!(tape.value(v).approx_eq(&vt, 1e-4));
    }

    #[test]
    fn loss_decreases() {
        let data = tiny_split(122);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Kgin::new(&data, TrainConfig::default(), &mut rng);
        let first = model.train_epoch(&mut rng).loss;
        for _ in 0..15 {
            model.train_epoch(&mut rng);
        }
        assert!(model.train_epoch(&mut rng).loss < first);
    }

    #[test]
    fn training_beats_random_ranking() {
        let data = tiny_split(123);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Kgin::new(&data, TrainConfig::default(), &mut rng);
        training_improves_recall(model, &data, 30);
    }

    #[test]
    fn independence_penalty_is_bounded() {
        let data = tiny_split(124);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Kgin::new(&data, TrainConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let ind = model.independence(&mut tape);
        let v = tape.value(ind).item();
        assert!((0.0..=1.0 + 1e-5).contains(&v), "penalty {v} out of range");
    }
}
