//! Property tests for the deterministic pool: exactly-once index coverage and
//! bitwise serial/parallel equivalence across arbitrary shapes.

use std::sync::atomic::{AtomicU32, Ordering};

use imcat_par::Pool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `parallel_for` over an arbitrary range must visit each index exactly
    /// once, for any grain and pool size.
    #[test]
    fn parallel_for_visits_each_index_exactly_once(
        start in 0usize..50,
        len in 0usize..400,
        grain in 1usize..33,
        threads in 1usize..5,
    ) {
        let pool = Pool::new(threads);
        let counts: Vec<AtomicU32> = (0..start + len).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(start..start + len, grain, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            let expected = u32::from(i >= start);
            prop_assert_eq!(c.load(Ordering::Relaxed), expected, "index {} miscounted", i);
        }
    }

    /// Chunked reductions merged in chunk order are bit-identical between a
    /// serial pool and a parallel one.
    #[test]
    fn map_chunks_reduction_is_threadcount_invariant(
        xs in proptest::collection::vec(-1.0f32..1.0, 1..600),
        chunk in 1usize..64,
    ) {
        let reduce = |pool: &Pool| -> f32 {
            pool.map_chunks(xs.len(), chunk, |_, r| xs[r].iter().sum::<f32>())
                .into_iter()
                .fold(0.0f32, |a, b| a + b)
        };
        let serial = reduce(&Pool::new(1));
        let parallel = reduce(&Pool::new(4));
        prop_assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    /// `parallel_chunks_mut` writes every element of the buffer exactly once
    /// with its own chunk's data — no overlap, no gaps.
    #[test]
    fn chunked_mut_fanout_partitions_the_buffer(
        len in 0usize..300,
        chunk in 1usize..41,
        threads in 1usize..5,
    ) {
        let pool = Pool::new(threads);
        let mut data = vec![u32::MAX; len];
        pool.parallel_chunks_mut(&mut data, chunk, |ci, slice| {
            for (off, x) in slice.iter_mut().enumerate() {
                *x = (ci * chunk + off) as u32;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(x, i as u32);
        }
    }
}

/// Regression: counters bumped inside pool chunk closures must reach
/// `snapshot()`. Under the old thread-local obs registry, bumps landing on
/// worker threads were recorded into registries nobody ever read, so this
/// test undercounted whenever the pool actually fanned out.
#[test]
fn worker_thread_metrics_reach_snapshot() {
    let _guard = imcat_obs::exclusive(true);
    let pool = Pool::new(4);
    pool.parallel_for(0..1000, 8, |_| {
        imcat_obs::counter_add("par.test.work_items", 1);
    });
    // Hold the pool alive until after the snapshot: visibility must not
    // depend on worker shutdown.
    let snap = imcat_obs::snapshot();
    assert_eq!(snap.counter("par.test.work_items"), 1000);
    drop(pool);
    // Shards survive worker teardown too.
    assert_eq!(imcat_obs::snapshot().counter("par.test.work_items"), 1000);
}

/// Spans recorded inside pool chunks attach to the submitter's in-flight
/// request trace: the handle crosses the dispatch boundary with the job.
#[test]
fn traces_propagate_into_pool_workers() {
    let _guard = imcat_obs::exclusive(true);
    let pool = Pool::new(4);
    let id = {
        let t = imcat_obs::trace::request("par.test.request", "par.test.seconds", true);
        pool.parallel_for(0..16, 1, |_| {
            let _s = imcat_obs::span("par.test.chunk.seconds");
        });
        t.id().expect("enabled => id minted")
    };
    let trace = imcat_obs::trace::get(id).expect("trace stored");
    let chunk_spans = trace.spans.iter().filter(|s| s.name == "par.test.chunk.seconds").count();
    assert_eq!(chunk_spans, 16, "every chunk span attached: {:?}", trace.spans);
    // The dispatch itself shows up too, recorded on the submitting thread.
    assert!(trace.spans.iter().any(|s| s.name == "pool.dispatch"));
    // Worker thread-locals are clean after the dispatch.
    pool.parallel_for(0..4, 1, |_| {
        assert!(imcat_obs::trace::current().is_none());
    });
}
