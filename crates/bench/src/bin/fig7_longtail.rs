//! Fig. 7 — long-tail analysis: per-popularity-group (G1 least popular … G5
//! most popular) contribution to R@20 for the GNN-based models, normalized
//! within each group by the best model (as in the paper).
//!
//! Usage: `cargo run --release -p imcat-bench --bin fig7_longtail`

use imcat_bench::{logln, preset_by_key, write_json, Env, ExpLog, ModelKind};
use imcat_core::train;
use imcat_eval::{group_recall_contribution, item_popularity_groups};

struct Row {
    model: String,
    dataset: String,
    /// Absolute contribution of G1..G5 to overall R@20.
    contributions: Vec<f64>,
    /// Contributions normalized by the per-group best model.
    normalized: Vec<f64>,
}
imcat_obs::impl_to_json!(Row { model, dataset, contributions, normalized });

fn main() {
    let env = Env::from_env();
    let models = [
        ModelKind::LightGcn,
        ModelKind::Tgcn,
        ModelKind::Kgin,
        ModelKind::Sgl,
        ModelKind::Kgcl,
        ModelKind::LImcat,
    ];
    let mut log = ExpLog::new("fig7_longtail");
    let mut rows = Vec::new();
    logln!(log, "Fig. 7: per-popularity-group contribution to R@20\n");
    for key in ["del", "cite"] {
        let data = env.dataset(&preset_by_key(key).unwrap());
        let groups = item_popularity_groups(&data, 5);
        logln!(log, "== {} ==", data.name);
        logln!(log, "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}", "model", "G1", "G2", "G3", "G4", "G5");
        let mut dataset_rows: Vec<Row> = Vec::new();
        for kind in models {
            let icfg = env.imcat_config();
            let mut model = kind.build(&data, &env.train_config(), &icfg, 1);
            train(model.as_mut(), &data, &env.trainer_config(7));
            let mut score_fn = |users: &[u32]| model.score_users(users);
            let contributions = group_recall_contribution(&mut score_fn, &data, 20, &groups, 5);
            dataset_rows.push(Row {
                model: kind.name().to_string(),
                dataset: data.name.clone(),
                contributions,
                normalized: Vec::new(),
            });
        }
        // Per-group normalization by the best model.
        for g in 0..5 {
            let best =
                dataset_rows.iter().map(|r| r.contributions[g]).fold(0.0f64, f64::max).max(1e-12);
            for r in &mut dataset_rows {
                r.normalized.push(r.contributions[g] / best);
            }
        }
        for r in &dataset_rows {
            let mut line = format!("{:<10}", r.model);
            for g in 0..5 {
                line.push_str(&format!(" {:>8.3}", r.normalized[g]));
            }
            logln!(
                log,
                "{line}   (abs: {:?})",
                r.contributions.iter().map(|c| (c * 1000.0).round() / 10.0).collect::<Vec<_>>()
            );
        }
        logln!(log);
        rows.extend(dataset_rows);
    }
    let path = write_json("fig7_longtail", &rows);
    logln!(log, "wrote {}", path.display());
}
