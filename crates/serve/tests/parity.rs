//! Serving/evaluation parity: for every user, `Engine::recommend` must
//! return exactly the masked top-K list the offline evaluator ranks — same
//! items, same order, bit-identical scores — at any `IMCAT_THREADS` setting,
//! and the batched path must agree with the single-request path.

use std::sync::{Mutex, OnceLock};

use imcat_core::{Imcat, ImcatConfig};
use imcat_data::{generate, SplitDataset, SynthConfig};
use imcat_eval::top_n_masked;
use imcat_models::{Bprmf, LightGcn, RecModel, TrainConfig};
use imcat_serve::{Engine, ServeConfig, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_split(seed: u64) -> SplitDataset {
    let synth = generate(&SynthConfig::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    synth.dataset.split((0.7, 0.1, 0.2), &mut rng)
}

/// The pool is process-global, so tests that reconfigure it must not overlap.
fn pool_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    imcat_par::set_threads(threads);
    let out = f();
    imcat_par::set_threads(imcat_par::default_threads());
    out
}

fn trained_bprmf(data: &SplitDataset) -> Bprmf {
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = Bprmf::new(data, TrainConfig::default(), &mut rng);
    for _ in 0..3 {
        model.train_epoch(&mut rng);
    }
    model
}

/// Every user's served list vs the evaluator's ranking of the model's own
/// score row, plus the raw (item, score-bits) fingerprint for cross-thread
/// comparison.
fn serve_fingerprint(model: &dyn RecModel, data: &SplitDataset, k: usize) -> Vec<(u32, u32)> {
    let artifact = model.export_artifact(data).expect("dot-product model exports");
    let mut engine = Engine::new(artifact, ServeConfig::default()).unwrap();
    let mut fp = Vec::new();
    for u in 0..data.n_users() as u32 {
        let recs = engine.recommend(u, k).unwrap();
        let scores = model.score_users(&[u]);
        let expected = top_n_masked(scores.row(0), data.train_items(u as usize), k);
        let got: Vec<u32> = recs.iter().map(|r| r.item).collect();
        assert_eq!(got, expected, "user {u}: served list != evaluator ranking");
        for r in &recs {
            assert_eq!(
                r.score.to_bits(),
                scores.row(0)[r.item as usize].to_bits(),
                "user {u}: served score differs from model score"
            );
            fp.push((r.item, r.score.to_bits()));
        }
    }
    fp
}

#[test]
fn bprmf_serving_matches_evaluator_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let data = tiny_split(21);
    let model = trained_bprmf(&data);
    let serial = with_threads(1, || serve_fingerprint(&model, &data, 20));
    let parallel = with_threads(4, || serve_fingerprint(&model, &data, 20));
    assert_eq!(serial, parallel, "served lists must be bit-identical across thread counts");
}

#[test]
fn lightgcn_serving_matches_evaluator_at_1_and_4_threads() {
    let _guard = pool_lock().lock().unwrap();
    let data = tiny_split(22);
    let mut rng = StdRng::seed_from_u64(12);
    let mut model = LightGcn::new(&data, TrainConfig::default(), &mut rng);
    for _ in 0..2 {
        model.train_epoch(&mut rng);
    }
    let serial = with_threads(1, || serve_fingerprint(&model, &data, 20));
    let parallel = with_threads(4, || serve_fingerprint(&model, &data, 20));
    assert_eq!(serial, parallel);
}

#[test]
fn imcat_model_serving_matches_evaluator() {
    let _guard = pool_lock().lock().unwrap();
    let data = tiny_split(23);
    let mut rng = StdRng::seed_from_u64(13);
    let backbone = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    let mut model = Imcat::new(
        backbone,
        &data,
        ImcatConfig { pretrain_epochs: 1, ..Default::default() },
        &mut rng,
    );
    model.train_epoch(&mut rng);
    let serial = with_threads(1, || serve_fingerprint(&model, &data, 10));
    let parallel = with_threads(4, || serve_fingerprint(&model, &data, 10));
    assert_eq!(serial, parallel);
}

#[test]
fn batch_path_matches_single_request_path() {
    let _guard = pool_lock().lock().unwrap();
    let data = tiny_split(24);
    let model = trained_bprmf(&data);
    let artifact = model.export_artifact(&data).unwrap();

    // Batched engine answers a tick with repeats and mixed cutoffs; an
    // uncached single-request engine answers the same requests one by one.
    let mut batched = Engine::new(artifact.clone(), ServeConfig::default()).unwrap();
    let mut single =
        Engine::new(artifact, ServeConfig { cache_capacity: 0, ..Default::default() }).unwrap();
    let n = data.n_users() as u32;
    let requests: Vec<(u32, usize)> =
        (0..40u32).map(|i| (i % n, if i % 3 == 0 { 5 } else { 20 })).collect();
    let tick = batched.recommend_batch(&requests);
    assert_eq!(tick.len(), requests.len());
    for (out, &(u, k)) in tick.iter().zip(&requests) {
        assert_eq!(
            out.as_ref().unwrap(),
            &single.recommend(u, k).unwrap(),
            "batch ({u}, {k}) diverged"
        );
    }
    // Repeats within the tick were deduplicated into cache hits or shared
    // scoring rows; the stats must still count every request.
    assert_eq!(batched.stats().served, requests.len() as u64);
}

#[test]
fn cache_hits_return_identical_lists() {
    let data = tiny_split(25);
    let model = trained_bprmf(&data);
    let mut engine =
        Engine::new(model.export_artifact(&data).unwrap(), ServeConfig::default()).unwrap();
    let cold = engine.recommend(3, 20).unwrap();
    let warm = engine.recommend(3, 20).unwrap();
    assert_eq!(cold, warm);
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.served, 2);
}

#[test]
fn reload_invalidates_cache_and_serves_new_artifact() {
    let data = tiny_split(26);
    let model_a = trained_bprmf(&data);
    let mut rng = StdRng::seed_from_u64(99);
    let mut model_b = Bprmf::new(&data, TrainConfig::default(), &mut rng);
    for _ in 0..5 {
        model_b.train_epoch(&mut rng);
    }
    let art_a = model_a.export_artifact(&data).unwrap();
    let art_b = model_b.export_artifact(&data).unwrap();

    let mut engine = Engine::new(art_a, ServeConfig::default()).unwrap();
    // Warm the cache for every user under artifact A.
    let lists_a: Vec<_> =
        (0..data.n_users() as u32).map(|u| engine.recommend(u, 20).unwrap()).collect();
    assert!(engine.cached_lists() > 0);

    engine.reload(art_b).unwrap();
    assert_eq!(engine.cached_lists(), 0, "reload must drop every cached list");

    // Served lists now reflect artifact B exactly — no stale A lists.
    let mut fresh_b =
        Engine::new(model_b.export_artifact(&data).unwrap(), ServeConfig::default()).unwrap();
    let mut any_changed = false;
    for u in 0..data.n_users() as u32 {
        let served = engine.recommend(u, 20).unwrap();
        assert_eq!(served, fresh_b.recommend(u, 20).unwrap(), "user {u} served a stale list");
        any_changed |= served != lists_a[u as usize];
    }
    assert!(any_changed, "artifacts A and B should rank at least one user differently");
}

/// Malformed requests come back as typed errors — never panics — and a bad
/// request mixed into a tick leaves every other answer untouched.
#[test]
fn malformed_requests_are_rejected_not_fatal() {
    let data = tiny_split(28);
    let model = trained_bprmf(&data);
    let mut engine =
        Engine::new(model.export_artifact(&data).unwrap(), ServeConfig::default()).unwrap();
    let n = data.n_users() as u32;

    assert_eq!(engine.recommend(n, 10), Err(ServeError::UserOutOfRange { user: n, n_users: n }));
    assert_eq!(
        engine.recommend(u32::MAX, 10).unwrap_err(),
        ServeError::UserOutOfRange { user: u32::MAX, n_users: n }
    );
    assert_eq!(engine.recommend(0, 0), Err(ServeError::ZeroK));

    // A poisoned tick: stale user ids and a zero cutoff interleaved with
    // valid requests. The valid ones must be answered exactly as if the bad
    // ones were never sent.
    let tick = engine.recommend_batch(&[(0, 5), (n, 5), (1, 0), (2, 5), (n + 7, 3), (3, 5)]);
    assert_eq!(tick.len(), 6);
    assert_eq!(tick[1], Err(ServeError::UserOutOfRange { user: n, n_users: n }));
    assert_eq!(tick[2], Err(ServeError::ZeroK));
    assert_eq!(tick[4], Err(ServeError::UserOutOfRange { user: n + 7, n_users: n }));
    let mut clean =
        Engine::new(model.export_artifact(&data).unwrap(), ServeConfig::default()).unwrap();
    for (slot, u) in [(0usize, 0u32), (3, 2), (5, 3)] {
        assert_eq!(tick[slot].as_ref().unwrap(), &clean.recommend(u, 5).unwrap());
    }
    // Rejections never pollute the cache or the served count's latency data.
    assert!(!engine.stats().p99_seconds.is_nan());
}

#[test]
fn invalid_reload_keeps_old_artifact_live() {
    let data = tiny_split(27);
    let model = trained_bprmf(&data);
    let mut engine =
        Engine::new(model.export_artifact(&data).unwrap(), ServeConfig::default()).unwrap();
    let before = engine.recommend(0, 10).unwrap();

    let mut bad = model.export_artifact(&data).unwrap();
    bad.user_emb.row_mut(0)[0] = f32::NAN;
    assert!(engine.reload(bad).is_err());
    assert_eq!(engine.recommend(0, 10).unwrap(), before, "failed reload must not disturb serving");
}
