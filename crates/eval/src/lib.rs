//! # imcat-eval
//!
//! Evaluation stack for the IMCAT reproduction: full-ranking Recall@N and
//! NDCG@N with train-item masking (paper §V-B), long-tail popularity-group
//! decomposition (Fig. 7), cold-start user subsets (Fig. 8), and the paired
//! t-test behind Table II's significance markers.

#![warn(missing_docs)]

mod extended;
mod groups;
mod metrics;
mod stats;

pub use extended::{evaluate_extended, intra_list_diversity, ExtendedMetrics};
pub use groups::{
    cold_start_users, evaluate_user_subset, group_recall_contribution, item_popularity_groups,
};
pub use metrics::{
    evaluate, evaluate_per_user, top_n_masked, top_n_masked_with, EvalSpec, EvalTarget,
    PerUserMetrics, RankingMetrics, TopKScratch,
};
pub use stats::{incomplete_beta, ln_gamma, mean, paired_t_test, std_dev, two_tailed_p, TTest};
