//! Property-based tests for the inference artifact: arbitrary embeddings and
//! masks roundtrip through the container bit-exactly, while truncated or
//! corrupted containers are rejected outright — a load either yields a fully
//! validated artifact or nothing.

use imcat_ckpt::Checkpoint;
use imcat_serve::{Artifact, Engine, ServeConfig};
use imcat_tensor::Tensor;
use proptest::prelude::*;

/// A finite-valued tensor drawn from raw bits (validation rejects NaN/inf,
/// so map everything into a finite range while keeping full mantissa churn).
fn finite_tensor(rows: usize, cols: usize, gen: &mut Gen) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                let raw = f32::from_bits(gen.next_u64() as u32);
                if raw.is_finite() {
                    raw.clamp(-1e30, 1e30)
                } else {
                    gen.below(1000) as f32
                }
            })
            .collect(),
    )
}

fn arbitrary_artifact(seed: u64) -> Artifact {
    let mut gen = Gen::new(seed);
    let n_users = 1 + gen.below(6) as usize;
    let n_items = 2 + gen.below(10) as usize;
    let d = 1 + gen.below(5) as usize;
    let masks = (0..n_users)
        .map(|_| {
            let mut m: Vec<u32> = (0..n_items as u32).filter(|_| gen.below(3) == 0).collect();
            m.truncate(n_items - 1); // leave at least one unmasked item
            m
        })
        .collect();
    Artifact::new(
        "prop-model",
        finite_tensor(n_users, d, &mut gen),
        finite_tensor(n_items, d, &mut gen),
        masks,
    )
}

fn assert_artifacts_bit_equal(a: &Artifact, b: &Artifact) {
    assert_eq!(a.model, b.model);
    assert_eq!(a.masks, b.masks);
    assert_eq!(a.user_emb.shape(), b.user_emb.shape());
    assert_eq!(a.item_emb.shape(), b.item_emb.shape());
    for (x, y) in a.user_emb.as_slice().iter().zip(b.user_emb.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in a.item_emb.as_slice().iter().zip(b.item_emb.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arbitrary artifacts survive the container roundtrip bit-exactly.
    #[test]
    fn roundtrip_is_bit_exact(seed in 0u64..1_000_000) {
        let art = arbitrary_artifact(seed);
        let bytes = art.to_checkpoint().to_bytes();
        let back = Artifact::from_checkpoint(&Checkpoint::from_bytes(&bytes).unwrap()).unwrap();
        assert_artifacts_bit_equal(&art, &back);
    }

    /// Any strict truncation and any single-byte corruption of the container
    /// is rejected; the engine never sees a partially decoded artifact.
    #[test]
    fn truncation_and_corruption_are_rejected(seed in 0u64..1_000_000) {
        let art = arbitrary_artifact(seed);
        let bytes = art.to_checkpoint().to_bytes();
        let mut gen = Gen::new(seed ^ 0xfeed);

        let cut = gen.below(bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} accepted");

        let mut flipped = bytes.clone();
        let at = gen.below(bytes.len() as u64) as usize;
        flipped[at] ^= 1 + gen.below(255) as u8;
        prop_assert!(Checkpoint::from_bytes(&flipped).is_err(), "byte flip at {at} accepted");
    }

    /// A structurally valid container whose *content* breaks the artifact
    /// invariants (mask out of range) decodes as an error, not an artifact.
    #[test]
    fn semantic_corruption_is_rejected(seed in 0u64..1_000_000) {
        let mut art = arbitrary_artifact(seed);
        art.masks[0] = vec![art.n_items() as u32]; // out of range
        let bytes = art.to_checkpoint().to_bytes();
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        prop_assert!(Artifact::from_checkpoint(&ck).is_err());
        prop_assert!(Engine::new(art, ServeConfig::default()).is_err());
    }

    /// Disk roundtrip (atomic save + load) is also bit-exact, and a
    /// truncated file on disk is rejected.
    #[test]
    fn disk_roundtrip_and_truncated_file(seed in 0u64..10_000) {
        let art = arbitrary_artifact(seed);
        let dir = std::env::temp_dir().join(format!("imcat-serve-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("a{seed}.artifact"));
        let written = art.save(&path).unwrap();
        let back = Artifact::load(&path).unwrap();
        assert_artifacts_bit_equal(&art, &back);

        let bytes = std::fs::read(&path).unwrap();
        prop_assert_eq!(bytes.len() as u64, written);
        let mut gen = Gen::new(seed ^ 0xc0de);
        let cut = gen.below(bytes.len() as u64) as usize;
        // Overwrite with a truncation and remove the .prev fallback so the
        // load must fail rather than silently recover.
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let mut prev = path.clone().into_os_string();
        prev.push(".prev");
        std::fs::remove_file(std::path::PathBuf::from(prev)).ok();
        prop_assert!(Artifact::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
